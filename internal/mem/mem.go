// Package mem models physical frames and paged virtual address spaces with
// x86-64 permission semantics. The crucial property, faithfully reproduced
// from the paper's problem statement, is that on x86 the execute permission
// implies read access: a page mapped X can always be read by data loads.
// Native execute-only memory therefore does not exist, and kR^X must enforce
// R^X in software (SFI range checks) or with MPX bound checks.
//
// An AddressSpace can optionally be switched to "EPT mode", modelling the
// nested-page-table hardware used by hypervisor-based schemes (Readactor,
// KHide), where R and X are independent bits. This is the hierarchically-
// privileged baseline kR^X explicitly avoids; it exists here for ablation
// benchmarks.
package mem

import (
	"encoding/binary"
	"fmt"
	"maps"
	"sort"
	"sync/atomic"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// Perm is a page permission bit set.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << 0
	PermW Perm = 1 << 1
	PermX Perm = 1 << 2

	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

// String renders the permission like "r-x".
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Frame is a physical page frame. Frames may be mapped at multiple virtual
// addresses (synonyms/aliases), which is how the physmap direct mapping is
// modelled: writes through one mapping are visible through all others.
type Frame struct {
	Data [PageSize]byte

	// gen counts content mutations. Every store path through the address
	// space (StoreByte/StoreBytes, Write, Poke, Rollback's pre-image
	// restore) and Zap bump it, so consumers that cache derived views of
	// the frame's bytes — the CPU's predecoded translation cache — can
	// validate with one integer compare per use. The counter lives on the
	// frame, not the page-table entry, because frames are the physical
	// truth: a write through a synonym mapping (text_poke's scratch alias)
	// must invalidate the view cached under every other virtual address.
	gen uint64

	// undoEpoch caches "this frame is already in the undo log of the
	// address space whose current undo epoch this is" (epochs are globally
	// unique, so a match can only mean that). It spares the store fast
	// path a map probe per store — preimage()'s log-membership test was
	// the single hottest line of a fuzzing iteration. Purely a cache: on
	// a mismatch preimage still consults the log itself.
	undoEpoch uint64

	// frozen marks the frame as potentially shared between a forked address
	// space and the rest of its fork family (see AddressSpace.Freeze). A
	// frozen frame is immutable forever: every store path breaks
	// copy-on-write first — repointing the writing space's mappings at a
	// private copy — so the bytes, gen, and undoEpoch of a frozen frame
	// never change again. That immutability is what lets forks share
	// frames, warm decode caches, and superblocks with their parent without
	// any cross-space invalidation protocol, and without data races between
	// concurrently executing forks.
	frozen bool
}

// Gen returns the frame's content generation. It changes (strictly
// increases) whenever the frame's bytes may have changed.
func (f *Frame) Gen() uint64 { return f.gen }

// Zap clears the frame's contents (used when modules are unloaded, to
// prevent code-layout inference attacks per §5.1.1). Zapping a frozen frame
// panics: the zap would be observable in every fork sharing it. Unload the
// module before forking, or in the fork family's golden parent only.
func (f *Frame) Zap() {
	if f.frozen {
		panic("mem: Zap of a frozen (fork-shared) frame")
	}
	for i := range f.Data {
		f.Data[i] = 0
	}
	f.gen++
}

// FaultKind classifies a memory access fault.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultNotMapped
	FaultNoRead
	FaultNoWrite
	FaultNoExec
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNotMapped:
		return "not-mapped"
	case FaultNoRead:
		return "no-read"
	case FaultNoWrite:
		return "no-write"
	case FaultNoExec:
		return "no-exec"
	}
	return "unknown"
}

// Fault describes a failed memory access (the simulation's #PF).
type Fault struct {
	Addr  uint64
	Kind  FaultKind
	Write bool
	Fetch bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	mode := "read"
	if f.Write {
		mode = "write"
	}
	if f.Fetch {
		mode = "fetch"
	}
	return fmt.Sprintf("page fault: %s at 0x%x (%s)", mode, f.Addr, f.Kind)
}

// page is one page-table entry. Once inserted a page struct is never
// mutated — Protect and CoW breaks replace the struct — so the pages map can
// be cloned structurally (maps.Clone) into a checkpoint (snapPages) or a
// fork, with both sides sharing the immutable entry structs.
type page struct {
	frame *Frame
	perm  Perm
}

// The data-side TLB.
//
// Every data access used to walk the page table — a Go map lookup — per
// byte or per access. The hot exec path (the CPU's load/store/push/pop)
// touches the same handful of pages over and over, so a small direct-mapped
// translation cache (the data-side analogue of the decode cache's 16-entry
// exec-page TLB) turns the steady state into one array index plus one
// generation compare.
//
// Validation is by construction: an entry records the mapGen it was filled
// at, and every structural mutation that could make it stale — Map/Unmap,
// Protect, ShadowData/Unshadow, and a structural Rollback — already bumps
// mapGen, which invalidates every entry at once. No explicit invalidation
// hooks are needed. A content-only Rollback deliberately does NOT bump
// mapGen: it restores frame bytes in place, so the cached page and data
// pointers remain both valid and correct.
//
// What an entry caches and what it must not:
//
//   - pg, the page-table entry: permissions are re-read from it on every
//     access (Protect bumps mapGen anyway, but the readable() outcome also
//     depends on the live EPT flag, so it is never precomputed).
//   - data, the data-READ view: the shadow frame when a HideM shadow is
//     installed, the real frame otherwise. Writes never go through it —
//     they target pg.frame, preserving the split-TLB semantics where
//     stores land on the real frame even while reads see the shadow.
//   - Faults are never cached: an unmapped vpn misses every time.
//
// dtlbSize is a power of two; vpn low bits index the array directly.
const dtlbSize = 64

type dtlbEntry struct {
	vpn  uint64
	gen  uint64 // mapGen at fill time
	pg   *page
	data *[PageSize]byte // data-read view (shadow-aware)
}

// DataTLBStats reports data-TLB behaviour for one address space.
type DataTLBStats struct {
	Hits   uint64
	Misses uint64 // fills; faulting accesses are not cached and count neither
}

// AddressSpace is a sparse paged virtual address space.
type AddressSpace struct {
	pages map[uint64]*page // keyed by virtual page number

	// EPT selects hypervisor-style nested-paging semantics where the read
	// and execute bits are independent, enabling native execute-only
	// memory. When false (the default, plain x86-64), X implies R for data
	// reads — the paper's core constraint.
	EPT bool

	// shadow maps virtual page numbers to an alternate frame served to
	// *data* accesses while instruction fetches keep using the real frame
	// — the split-TLB desynchronization trick of HideM (Gionta et al.,
	// §2 of the paper): the ITLB and DTLB of the same virtual address
	// point at different physical pages.
	shadow map[uint64]*Frame

	// mapGen counts page-table structure mutations: Map/MapFrames, Unmap,
	// Protect, ShadowData/Unshadow, and Rollback all bump it. Consumers
	// that cache address translations (the CPU's decode cache) re-resolve
	// a page only when this changes; frame *content* changes are tracked
	// separately, per frame (Frame.Gen). Pure reads — Peek included, which
	// deliberately bypasses permissions but mutates nothing — never bump
	// either counter.
	mapGen uint64

	// Checkpoint state: the page-table structure captured by Checkpoint
	// plus a copy-on-write undo log of frame pre-images, so Rollback can
	// return the space to exactly the checkpointed state (the substrate of
	// Kernel.Snapshot/Restore — crashed fuzzing runs must not poison
	// subsequent iterations).
	snapPages  map[uint64]*page
	snapShadow map[uint64]*Frame
	undo       map[*Frame]*[PageSize]byte
	// undoEpoch identifies the current undo-log cycle (checkpoint to
	// rollback). Epochs are drawn from a process-global counter so no two
	// spaces — and no two cycles of the same space — ever share one, which
	// is what lets Frame.undoEpoch == undoEpoch prove log membership
	// without touching the map. Refreshed by Checkpoint and by every
	// Rollback (the log empties there, so prior stamps must stop matching).
	undoEpoch uint64
	// snapMapGen is mapGen as of the last Checkpoint/Rollback sync point;
	// when it still matches at Rollback time, no structural mutation
	// happened and the page-table rebuild is skipped entirely.
	snapMapGen uint64
	// undoPool recycles pre-image buffers across Rollback cycles so the
	// per-iteration restore loop (the fuzzer's hottest mem path) does not
	// re-allocate a 4KB copy per dirtied frame every iteration.
	undoPool []*[PageSize]byte

	// Copy-on-write fork state (see cow.go). aliases maps a frozen frame to
	// every virtual page number it is (or, at freeze time, was in the armed
	// checkpoint) mapped at, so a CoW break can repoint all synonym mappings
	// at the private copy in one step. frozenFrames and cowBreaks feed
	// CowStats; frozenClean records that every frame reachable from the page
	// table was frozen by Freeze and nothing unfrozen has been mapped or
	// created since — the invariant Fork needs, letting consecutive forks
	// skip the re-freeze scan.
	aliases      map[*Frame][]uint64
	frozenFrames uint64
	cowBreaks    uint64
	frozenClean  bool

	// Cached Ranges() result, valid while rangesGen matches mapGen (the
	// audit walks the ranges several times per invocation; the layout only
	// changes when mapGen does).
	ranges    []MappedRange
	rangesGen uint64
	rangesOK  bool

	// The data-side TLB (see the dtlbEntry comment). Entries self-
	// invalidate through the mapGen compare; the stats are cumulative.
	dtlb      [dtlbSize]dtlbEntry
	dtlbStats DataTLBStats
}

// undoEpochCounter feeds nextUndoEpoch. Global (not per-space) because a
// frame mapped into several spaces carries a single undoEpoch stamp: unique
// epochs guarantee a stale stamp can never equal another space's live one.
var undoEpochCounter atomic.Uint64

func nextUndoEpoch() uint64 { return undoEpochCounter.Add(1) }

// NewAddressSpace returns an empty address space with x86 semantics.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]*page)}
}

func vpn(va uint64) uint64 { return va >> PageShift }

// MapGen returns the page-table structure generation. It changes whenever
// a translation cached outside the address space could have gone stale for
// structural reasons: pages mapped, unmapped, re-protected, shadowed, or
// rolled back.
func (as *AddressSpace) MapGen() uint64 { return as.mapGen }

// ExecFrame resolves the frame backing va for instruction fetch: the page
// must be mapped with the execute permission. Fetches always see the real
// frame — HideM data shadows desynchronize only the data view.
func (as *AddressSpace) ExecFrame(va uint64) (*Frame, bool) {
	pg, ok := as.pages[vpn(va)]
	if !ok || pg.perm&PermX == 0 {
		return nil, false
	}
	return pg.frame, true
}

// PageAligned reports whether va is page-aligned.
func PageAligned(va uint64) bool { return va&PageMask == 0 }

// PagesFor returns the number of pages needed to hold size bytes.
func PagesFor(size uint64) int { return int((size + PageMask) >> PageShift) }

// Map allocates fresh frames for n pages at va with the given permissions.
// It returns the frames so callers can alias them elsewhere.
func (as *AddressSpace) Map(va uint64, n int, perm Perm) ([]*Frame, error) {
	if !PageAligned(va) {
		return nil, fmt.Errorf("mem: map at unaligned address 0x%x", va)
	}
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = new(Frame)
	}
	if err := as.MapFrames(va, frames, perm); err != nil {
		return nil, err
	}
	return frames, nil
}

// MapFrames maps existing frames at va (creating synonyms if the frames are
// already mapped elsewhere).
func (as *AddressSpace) MapFrames(va uint64, frames []*Frame, perm Perm) error {
	if !PageAligned(va) {
		return fmt.Errorf("mem: map at unaligned address 0x%x", va)
	}
	base := vpn(va)
	for i := range frames {
		if _, exists := as.pages[base+uint64(i)]; exists {
			return fmt.Errorf("mem: page 0x%x already mapped", (base+uint64(i))<<PageShift)
		}
	}
	frozen := false
	for i, f := range frames {
		as.pages[base+uint64(i)] = &page{frame: f, perm: perm}
		if f.frozen {
			frozen = true
		} else {
			// An unfrozen frame entered a (possibly) frozen-clean space; the
			// next Fork must re-scan.
			as.frozenClean = false
		}
	}
	if frozen {
		as.registerFrozenAliases(frames)
	}
	as.mapGen++
	return nil
}

// Unmap removes n pages starting at va. Unmapping a hole is an error.
func (as *AddressSpace) Unmap(va uint64, n int) error {
	if !PageAligned(va) {
		return fmt.Errorf("mem: unmap at unaligned address 0x%x", va)
	}
	base := vpn(va)
	for i := 0; i < n; i++ {
		if _, ok := as.pages[base+uint64(i)]; !ok {
			return fmt.Errorf("mem: unmap of unmapped page 0x%x", (base+uint64(i))<<PageShift)
		}
	}
	for i := 0; i < n; i++ {
		delete(as.pages, base+uint64(i))
	}
	as.mapGen++
	return nil
}

// Protect changes the permissions of n pages starting at va.
func (as *AddressSpace) Protect(va uint64, n int, perm Perm) error {
	if !PageAligned(va) {
		return fmt.Errorf("mem: protect at unaligned address 0x%x", va)
	}
	base := vpn(va)
	for i := 0; i < n; i++ {
		pg, ok := as.pages[base+uint64(i)]
		if !ok {
			return fmt.Errorf("mem: protect of unmapped page 0x%x", (base+uint64(i))<<PageShift)
		}
		// Replace, never mutate: the struct may be shared with a checkpoint
		// or a fork (see the page type comment).
		as.pages[base+uint64(i)] = &page{frame: pg.frame, perm: perm}
	}
	as.mapGen++
	return nil
}

// Mapped reports whether va falls on a mapped page.
func (as *AddressSpace) Mapped(va uint64) bool {
	_, ok := as.pages[vpn(va)]
	return ok
}

// PermAt returns the permissions of the page containing va.
func (as *AddressSpace) PermAt(va uint64) (Perm, bool) {
	pg, ok := as.pages[vpn(va)]
	if !ok {
		return 0, false
	}
	return pg.perm, true
}

// FramesAt returns the n frames mapped starting at page-aligned va.
func (as *AddressSpace) FramesAt(va uint64, n int) ([]*Frame, error) {
	if !PageAligned(va) {
		return nil, fmt.Errorf("mem: FramesAt unaligned address 0x%x", va)
	}
	base := vpn(va)
	out := make([]*Frame, n)
	for i := 0; i < n; i++ {
		pg, ok := as.pages[base+uint64(i)]
		if !ok {
			return nil, fmt.Errorf("mem: FramesAt unmapped page 0x%x", (base+uint64(i))<<PageShift)
		}
		out[i] = pg.frame
	}
	return out, nil
}

// readable reports whether a data read of the page is permitted under the
// address space's semantics.
func (as *AddressSpace) readable(p Perm) bool {
	if p&PermR != 0 {
		return true
	}
	// x86: execute implies read. Under EPT (nested paging), it does not.
	return !as.EPT && p&PermX != 0
}

// dataPage resolves a virtual page number for a data access through the
// data-side TLB, filling the entry on a miss. It returns nil when the page
// is unmapped (faults are never cached). Permission checks are the
// caller's: reads re-evaluate readable() per access, writes check PermW.
func (as *AddressSpace) dataPage(v uint64) *dtlbEntry {
	e := &as.dtlb[v&(dtlbSize-1)]
	if e.pg != nil && e.gen == as.mapGen && e.vpn == v {
		as.dtlbStats.Hits++
		return e
	}
	pg, ok := as.pages[v]
	if !ok {
		return nil
	}
	data := &pg.frame.Data
	if as.shadow != nil {
		if sh, ok := as.shadow[v]; ok {
			// HideM split-TLB semantics: the DTLB view differs from the
			// ITLB view — data reads see the shadow frame.
			data = &sh.Data
		}
	}
	e.vpn, e.gen, e.pg, e.data = v, as.mapGen, pg, data
	as.dtlbStats.Misses++
	return e
}

// DataTLBStats returns a snapshot of the data-TLB counters.
func (as *AddressSpace) DataTLBStats() DataTLBStats { return as.dtlbStats }

// LoadByte performs a data load of one byte.
func (as *AddressSpace) LoadByte(va uint64) (byte, *Fault) {
	e := as.dataPage(vpn(va))
	if e == nil {
		return 0, &Fault{Addr: va, Kind: FaultNotMapped}
	}
	if !as.readable(e.pg.perm) {
		return 0, &Fault{Addr: va, Kind: FaultNoRead}
	}
	return e.data[va&PageMask], nil
}

// ShadowData installs a HideM-style data shadow for n pages at va: fetches
// keep executing the real frames while data loads observe the shadow
// (typically zero-filled) frames. Passing nil frames allocates fresh
// zeroed shadows.
func (as *AddressSpace) ShadowData(va uint64, n int, frames []*Frame) error {
	if !PageAligned(va) {
		return fmt.Errorf("mem: shadow at unaligned address 0x%x", va)
	}
	base := vpn(va)
	for i := 0; i < n; i++ {
		if _, ok := as.pages[base+uint64(i)]; !ok {
			return fmt.Errorf("mem: shadow of unmapped page 0x%x", (base+uint64(i))<<PageShift)
		}
	}
	if as.shadow == nil {
		as.shadow = make(map[uint64]*Frame)
	}
	for i := 0; i < n; i++ {
		var f *Frame
		if frames != nil {
			f = frames[i]
		} else {
			f = new(Frame)
		}
		if !f.frozen {
			as.frozenClean = false
		}
		as.shadow[base+uint64(i)] = f
	}
	as.mapGen++
	return nil
}

// Unshadow removes the data shadows of n pages at va.
func (as *AddressSpace) Unshadow(va uint64, n int) {
	base := vpn(va)
	for i := 0; i < n; i++ {
		delete(as.shadow, base+uint64(i))
	}
	as.mapGen++
}

// StoreByte performs a data store of one byte. Stores always land on the
// real frame, never a data shadow — the ITLB/DTLB split desynchronizes
// reads only.
func (as *AddressSpace) StoreByte(va uint64, v byte) *Fault {
	e := as.dataPage(vpn(va))
	if e == nil {
		return &Fault{Addr: va, Kind: FaultNotMapped, Write: true}
	}
	if e.pg.perm&PermW == 0 {
		return &Fault{Addr: va, Kind: FaultNoWrite, Write: true}
	}
	f := e.pg.frame
	if f.frozen {
		f = as.breakCoW(vpn(va))
	}
	as.preimage(f)
	f.Data[va&PageMask] = v
	f.gen++
	return nil
}

// preimage records a frame's contents in the undo log before its first
// modification after a checkpoint. Frames already logged keep their original
// (checkpoint-time) pre-image.
func (as *AddressSpace) preimage(f *Frame) {
	if f.frozen {
		// Every store path breaks copy-on-write before reaching here; a
		// frozen frame in the undo log would be restored by Rollback —
		// mutating state shared with every other fork.
		panic("mem: write reached a frozen (fork-shared) frame without a CoW break")
	}
	if as.undo == nil || f.undoEpoch == as.undoEpoch {
		return
	}
	if _, ok := as.undo[f]; ok {
		// Logged, but the stamp was overwritten (a frame shared with
		// another checkpointed space). Re-stamp; the log stays authoritative.
		f.undoEpoch = as.undoEpoch
		return
	}
	var cp *[PageSize]byte
	if n := len(as.undoPool); n > 0 {
		cp = as.undoPool[n-1]
		as.undoPool = as.undoPool[:n-1]
	} else {
		cp = new([PageSize]byte)
	}
	*cp = f.Data
	as.undo[f] = cp
	f.undoEpoch = as.undoEpoch
}

// Checkpoint captures the current page-table structure (mappings, permissions,
// shadows) and begins copy-on-write tracking of frame contents. A subsequent
// Rollback restores the space to this exact state. Calling Checkpoint again
// replaces the previous checkpoint.
func (as *AddressSpace) Checkpoint() {
	// Page structs are immutable once inserted, so the checkpoint is a
	// structural clone sharing the entry structs (maps.Clone of a nil map is
	// nil, which is exactly the no-shadow representation).
	as.snapPages = maps.Clone(as.pages)
	as.snapShadow = maps.Clone(as.shadow)
	as.undo = make(map[*Frame]*[PageSize]byte)
	as.undoEpoch = nextUndoEpoch()
	as.snapMapGen = as.mapGen
}

// Rollback restores the space to the state captured by the last Checkpoint:
// every modified frame gets its pre-image back, and the page-table structure
// (mappings added/removed/re-protected since) is rebuilt. The checkpoint
// stays armed, so Rollback can be called repeatedly — the fuzzing loop
// restores once per iteration.
func (as *AddressSpace) Rollback() error {
	if as.snapPages == nil {
		return fmt.Errorf("mem: rollback without a checkpoint")
	}
	// Content: restore only the frames dirtied since the last restore, and
	// recycle their pre-image buffers. The undo log empties here, so the
	// next cycle's work is proportional to what it actually wrote — not to
	// everything ever written since the checkpoint.
	for f, img := range as.undo {
		f.Data = *img
		f.gen++
		as.undoPool = append(as.undoPool, img)
		delete(as.undo, f)
	}
	as.undoEpoch = nextUndoEpoch()
	// Structure: the page table is rebuilt only if a structural mutation
	// (Map/Unmap/Protect/Shadow) actually happened since the checkpoint —
	// mapGen tracks exactly that; plain stores leave it alone.
	if as.mapGen != as.snapMapGen {
		as.pages = maps.Clone(as.snapPages)
		as.shadow = maps.Clone(as.snapShadow)
		// The rebuild can remap frames that were unmapped when Freeze last
		// scanned; be conservative and let the next Fork re-scan.
		as.frozenClean = false
		as.mapGen++
		as.snapMapGen = as.mapGen
	}
	return nil
}

// Read performs a little-endian data load of size bytes (1, 2, 4, or 8).
// Accesses contained in one page resolve that page once through the data
// TLB and load word-at-a-time; only accesses straddling a page boundary
// fall back to the byte loop (whose per-byte faults are the partial-
// progress semantics). Fault outcomes are identical on both paths: the
// in-page case cannot make partial progress, so the first failing byte —
// which the byte loop would report — is the access's own first byte.
func (as *AddressSpace) Read(va uint64, size uint8) (uint64, *Fault) {
	if va&PageMask+uint64(size) <= PageSize {
		e := as.dataPage(vpn(va))
		if e == nil {
			return 0, &Fault{Addr: va, Kind: FaultNotMapped}
		}
		if !as.readable(e.pg.perm) {
			return 0, &Fault{Addr: va, Kind: FaultNoRead}
		}
		off := va & PageMask
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(e.data[off : off+8]), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(e.data[off : off+4])), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(e.data[off : off+2])), nil
		case 1:
			return uint64(e.data[off]), nil
		}
		var v uint64
		for i := uint8(0); i < size; i++ {
			v |= uint64(e.data[off+uint64(i)]) << (8 * i)
		}
		return v, nil
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		b, f := as.LoadByte(va + uint64(i))
		if f != nil {
			return 0, f
		}
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// Write performs a little-endian data store of size bytes. Like Read, the
// in-page case resolves the page once and stores word-at-a-time; page
// straddlers keep the byte loop and its partial-progress fault semantics.
func (as *AddressSpace) Write(va uint64, v uint64, size uint8) *Fault {
	if va&PageMask+uint64(size) <= PageSize {
		e := as.dataPage(vpn(va))
		if e == nil {
			return &Fault{Addr: va, Kind: FaultNotMapped, Write: true}
		}
		if e.pg.perm&PermW == 0 {
			return &Fault{Addr: va, Kind: FaultNoWrite, Write: true}
		}
		f := e.pg.frame
		if f.frozen {
			f = as.breakCoW(vpn(va))
		}
		as.preimage(f)
		off := va & PageMask
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(f.Data[off:off+8], v)
		case 4:
			binary.LittleEndian.PutUint32(f.Data[off:off+4], uint32(v))
		case 2:
			binary.LittleEndian.PutUint16(f.Data[off:off+2], uint16(v))
		case 1:
			f.Data[off] = byte(v)
		default:
			for i := uint8(0); i < size; i++ {
				f.Data[off+uint64(i)] = byte(v >> (8 * i))
			}
		}
		f.gen++
		return nil
	}
	for i := uint8(0); i < size; i++ {
		if f := as.StoreByte(va+uint64(i), byte(v>>(8*i))); f != nil {
			return f
		}
	}
	return nil
}

// ReadRun resolves va through the data TLB and returns the data-read view
// (shadow-aware, like Read) of its page from va to the page end. The caller
// owns splitting accesses at the page boundary; the window never spans one.
// Built for the CPU's REP string fast path: one translation and permission
// check covers a whole in-page run instead of one per element.
func (as *AddressSpace) ReadRun(va uint64) ([]byte, *Fault) {
	e := as.dataPage(vpn(va))
	if e == nil {
		return nil, &Fault{Addr: va, Kind: FaultNotMapped}
	}
	if !as.readable(e.pg.perm) {
		return nil, &Fault{Addr: va, Kind: FaultNoRead}
	}
	return e.data[va&PageMask:], nil
}

// WriteRun is ReadRun's store-side counterpart: it returns a writable window
// over va's page from va to the page end, targeting the real frame (never a
// data shadow, same as Write). The pre-image is logged and the content
// generation bumped before the window is handed out, so the caller may store
// through it directly; callers must request a window only when they will
// write at least one byte.
func (as *AddressSpace) WriteRun(va uint64) ([]byte, *Fault) {
	e := as.dataPage(vpn(va))
	if e == nil {
		return nil, &Fault{Addr: va, Kind: FaultNotMapped, Write: true}
	}
	if e.pg.perm&PermW == 0 {
		return nil, &Fault{Addr: va, Kind: FaultNoWrite, Write: true}
	}
	f := e.pg.frame
	if f.frozen {
		f = as.breakCoW(vpn(va))
	}
	as.preimage(f)
	f.gen++
	return f.Data[va&PageMask:], nil
}

// Fetch reads up to len(buf) instruction bytes at va. Fetching requires the
// execute permission. It returns the number of bytes fetched, stopping early
// at a non-executable or unmapped page boundary (a fault is returned only if
// no bytes at all could be fetched).
func (as *AddressSpace) Fetch(va uint64, buf []byte) (int, *Fault) {
	n := 0
	for n < len(buf) {
		a := va + uint64(n)
		pg, ok := as.pages[vpn(a)]
		if !ok {
			if n == 0 {
				return 0, &Fault{Addr: va, Kind: FaultNotMapped, Fetch: true}
			}
			return n, nil
		}
		if pg.perm&PermX == 0 {
			if n == 0 {
				return 0, &Fault{Addr: va, Kind: FaultNoExec, Fetch: true}
			}
			return n, nil
		}
		n += copy(buf[n:], pg.frame.Data[a&PageMask:])
	}
	return n, nil
}

// LoadBytes copies n bytes at va into a fresh slice, honouring read
// permissions (used by loaders, debuggers, and the attack framework's
// "arbitrary read" plumbing).
func (as *AddressSpace) LoadBytes(va uint64, n int) ([]byte, *Fault) {
	out := make([]byte, n)
	for i := 0; i < n; {
		a := va + uint64(i)
		pg, ok := as.pages[vpn(a)]
		if !ok {
			return nil, &Fault{Addr: a, Kind: FaultNotMapped}
		}
		if !as.readable(pg.perm) {
			return nil, &Fault{Addr: a, Kind: FaultNoRead}
		}
		src := &pg.frame.Data
		if as.shadow != nil {
			if sh, ok := as.shadow[vpn(a)]; ok {
				src = &sh.Data
			}
		}
		i += copy(out[i:], src[a&PageMask:])
	}
	return out, nil
}

// StoreBytes stores b at va, honouring write permissions. On a fault,
// bytes on preceding pages have already been stored (the same partial
// progress a byte-at-a-time store would make) and the fault names the
// first unwritable byte.
func (as *AddressSpace) StoreBytes(va uint64, b []byte) *Fault {
	for i := 0; i < len(b); {
		a := va + uint64(i)
		pg, ok := as.pages[vpn(a)]
		if !ok {
			return &Fault{Addr: a, Kind: FaultNotMapped, Write: true}
		}
		if pg.perm&PermW == 0 {
			return &Fault{Addr: a, Kind: FaultNoWrite, Write: true}
		}
		f := pg.frame
		if f.frozen {
			f = as.breakCoW(vpn(a))
		}
		as.preimage(f)
		i += copy(f.Data[a&PageMask:], b[i:])
		f.gen++
	}
	return nil
}

// Poke stores bytes ignoring permissions. It models privileged installation
// of memory contents (boot-time image loading, the module loader writing
// text through the still-mapped physmap synonym) and is not reachable from
// emulated code.
func (as *AddressSpace) Poke(va uint64, b []byte) error {
	for i := 0; i < len(b); {
		a := va + uint64(i)
		pg, ok := as.pages[vpn(a)]
		if !ok {
			return fmt.Errorf("mem: poke of unmapped page 0x%x", a)
		}
		f := pg.frame
		if f.frozen {
			f = as.breakCoW(vpn(a))
		}
		as.preimage(f)
		i += copy(f.Data[a&PageMask:], b[i:])
		f.gen++
	}
	return nil
}

// Peek loads bytes ignoring permissions (host-side inspection, e.g. by the
// evaluation harness when comparing images).
func (as *AddressSpace) Peek(va uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; {
		a := va + uint64(i)
		pg, ok := as.pages[vpn(a)]
		if !ok {
			return nil, fmt.Errorf("mem: peek of unmapped page 0x%x", a)
		}
		i += copy(out[i:], pg.frame.Data[a&PageMask:])
	}
	return out, nil
}

// MappedRange describes a maximal run of contiguously mapped pages with
// identical permissions.
type MappedRange struct {
	Start uint64
	End   uint64 // exclusive
	Perm  Perm
}

// Ranges returns the mapped ranges of the address space in ascending order.
// The result is cached until the next structural mutation (mapGen change);
// callers must treat the returned slice as read-only.
func (as *AddressSpace) Ranges() []MappedRange {
	if len(as.pages) == 0 {
		return nil
	}
	if as.rangesOK && as.rangesGen == as.mapGen {
		return as.ranges
	}
	vpns := make([]uint64, 0, len(as.pages))
	for k := range as.pages {
		vpns = append(vpns, k)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	var out []MappedRange
	cur := MappedRange{Start: vpns[0] << PageShift, End: (vpns[0] + 1) << PageShift, Perm: as.pages[vpns[0]].perm}
	for _, v := range vpns[1:] {
		p := as.pages[v].perm
		if v<<PageShift == cur.End && p == cur.Perm {
			cur.End += PageSize
			continue
		}
		out = append(out, cur)
		cur = MappedRange{Start: v << PageShift, End: (v + 1) << PageShift, Perm: p}
	}
	out = append(out, cur)
	as.ranges, as.rangesGen, as.rangesOK = out, as.mapGen, true
	return out
}
