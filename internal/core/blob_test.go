package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/diversify"
	"repro/internal/sfi"
	"repro/internal/store"
)

// corruptBlobFile flips one byte of the stored image blob on disk.
func corruptBlobFile(t *testing.T, disk *store.Disk, key store.Key) {
	t.Helper()
	path := filepath.Join(disk.Dir(), store.KindImage, key.Hash()[:2], key.Hash()+".blob")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBuildResultBlobRoundTrip(t *testing.T) {
	src := miniProg(t)
	cfg := Config{XOM: XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1}
	direct, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeBuildResult(direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBuildResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%x", got.Image.Text) != fmt.Sprintf("%x", direct.Image.Text) {
		t.Error("decoded image bytes differ")
	}
	for name, addr := range direct.Image.Symbols {
		if got.Image.Symbols[name] != addr {
			t.Errorf("symbol %s: %#x decoded vs %#x direct", name, got.Image.Symbols[name], addr)
		}
	}
	if got.SFIStats != direct.SFIStats {
		t.Errorf("SFI stats: %+v vs %+v", got.SFIStats, direct.SFIStats)
	}
	if got.DivStats != direct.DivStats {
		t.Errorf("diversification stats: %+v vs %+v", got.DivStats, direct.DivStats)
	}
	// The post-pass IR must survive: the audit layer resolves function
	// bodies through it at fuzz time.
	if got.Prog == nil || len(got.Prog.Funcs) != len(direct.Prog.Funcs) {
		t.Fatalf("decoded program IR missing or truncated")
	}
	if _, err := DecodeBuildResult(data[:8]); err == nil {
		t.Fatal("truncated blob decoded")
	}
}

func TestImageCacheWarmStartsFromStore(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	src := miniProg(t)
	cfg := Config{XOM: XOMSFI, SFILevel: sfi.O3, Seed: 1, WatchdogBudget: 1 << 20}

	cold := NewImageCache(disk)
	r1, err := cold.Build(src, "mini", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Stats().Builds; got != 1 {
		t.Fatalf("cold cache Builds = %d, want 1", got)
	}

	// A fresh cache over the same store is the second process: the image
	// must come from disk with zero compilations.
	warm := NewImageCache(disk)
	r2, err := warm.Build(src, "mini", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Builds is tracked per-cache (store layers report zero), so the warm
	// cache's folded count is exactly its own compilations.
	if got := warm.Stats().Builds; got != 0 {
		t.Fatalf("warm cache compiled %d times, want 0", got)
	}
	if fmt.Sprintf("%x", r2.Image.Text) != fmt.Sprintf("%x", r1.Image.Text) {
		t.Error("warm-started image differs from the built one")
	}
	// Runtime-only knobs come from the requesting config, not the blob.
	if r2.Config.WatchdogBudget != cfg.WatchdogBudget {
		t.Errorf("decoded result Config.WatchdogBudget = %d, want %d",
			r2.Config.WatchdogBudget, cfg.WatchdogBudget)
	}
	if r2.Prog == nil {
		t.Fatal("warm-started result lost its program IR")
	}
}

func TestImageCacheRebuildsAfterCorruption(t *testing.T) {
	dir := t.TempDir()
	disk, err := store.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := miniProg(t)
	cfg := Config{XOM: XOMMPX, Seed: 1}
	if _, err := NewImageCache(disk).Build(src, "mini", cfg); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored image behind the store's back, then warm-start: the
	// checksum rejects the blob and the cache falls back to a rebuild.
	key := store.Key{ProgID: "mini", BuildKey: cfg.BuildKey()}
	corruptBlobFile(t, disk, key)

	warm := NewImageCache(disk)
	res, err := warm.Build(src, "mini", cfg)
	if err != nil {
		t.Fatalf("rebuild after corruption failed: %v", err)
	}
	if res == nil || res.Image == nil {
		t.Fatal("rebuild returned no image")
	}
	s := warm.Stats()
	if s.Corrupt == 0 {
		t.Error("corruption not counted in Stats().Corrupt")
	}
	// The rebuild re-Put the blob: a third cache must now warm-start clean.
	third := NewImageCache(disk)
	if _, err := third.Build(src, "mini", cfg); err != nil {
		t.Fatal(err)
	}
	if got := third.Stats().Builds; got != 0 {
		t.Fatalf("cache after rebuild compiled %d times, want 0", got)
	}
}
