// Return-address contrasts the two §5.2.2 protection schemes. It boots one
// kernel with XOR encryption (X) and one with decoys (D), primes their
// stacks with deep syscalls, and shows what an attacker harvesting the
// kernel stack actually sees — plus the §5.3 substitution attack that
// remains possible against X.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

func main() {
	base := core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, Seed: 33}

	for _, ra := range []diversify.RAProt{diversify.RANone, diversify.RAEncrypt, diversify.RADecoy} {
		cfg := base
		cfg.RAProt = ra
		k, err := kernel.Boot(cfg)
		if err != nil {
			log.Fatal(err)
		}
		a := &attack.Attacker{K: k}
		// Prime the stack, then harvest like an indirect JIT-ROP attacker.
		if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
			log.Fatal(err)
		}
		k.Syscall(kernel.SysOpen, kernel.UserBuf)
		k.Syscall(kernel.SysExecve, kernel.UserBuf)
		ptrs, ok := a.HarvestStack(256)
		fmt.Printf("=== %s ===\n", cfg.Name())
		fmt.Printf("stack harvest: ok=%v, %d code-pointer-looking words\n", ok, len(ptrs))
		for i, p := range ptrs {
			if i >= 4 {
				fmt.Println("  ...")
				break
			}
			tag := classify(k, p)
			fmt.Printf("  %#x  (%s)\n", p, tag)
		}
		fmt.Println()
	}

	// The documented §5.3 limitation: same-key ciphertext substitution.
	cfg := base
	cfg.RAProt = diversify.RAEncrypt
	k, err := kernel.Boot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("substitution attack against X (same-xkey ciphertext swap):")
	fmt.Println(" ", attack.Substitution(k))
}

func classify(k *kernel.Kernel, p uint64) string {
	textStart, textEnd := k.Sym("_text"), k.Sym("_etext")
	if p < textStart || p >= textEnd {
		return "not in .text"
	}
	b, err := k.Space.AS.Peek(p, 1)
	if err != nil {
		return "unreadable"
	}
	if b[0] == 0xCC {
		return "int3 TRIPWIRE — a decoy"
	}
	return "real return site"
}
