package cpu

import (
	"errors"

	"repro/internal/isa"
	"repro/internal/mem"
)

// The predecoded translation cache.
//
// Kernel text is immutable between rare, explicit patch events, yet the
// baseline Step paid a byte-at-a-time page walk plus a full isa.Decode for
// every executed instruction. The cache decodes each executable page once —
// lazily, from the first offset actually executed — into {Instr, cost, len}
// entries indexed by page offset, so the steady-state Step is a slice index
// and a dispatch.
//
// Correctness rests on two generation counters, validated on every lookup:
//
//   - mem.AddressSpace.MapGen() changes whenever the translation structure
//     changes (Map/MapFrames, Unmap, Protect, ShadowData/Unshadow,
//     Rollback). A change forces re-resolution of the page's frame and
//     permissions through ExecFrame; a frame swap or lost PermX is observed
//     here. Cached *page pointers are never held across lookups — Rollback
//     rebuilds the page table wholesale, so only the frame pointer (which
//     the undo log preserves) is cached.
//
//   - mem.Frame.Gen() changes whenever the frame's bytes change (StoreByte,
//     StoreBytes, Write, Poke, Zap, Rollback pre-image restore). Content
//     generations live on the frame, not the virtual page, because frames
//     map at multiple addresses (physmap synonyms, patch.TextPoke's
//     temporary RW alias): a write through any alias must invalidate every
//     mapping's cached decodes. A mismatch flushes the page's entries.
//
// Pure reads (Peek, LoadBytes, Read, Fetch) bump nothing and cost the cache
// nothing.
//
// Page-tail rule: an instruction whose decode window is truncated by the
// page boundary and fails with ErrTruncated is NOT cached — the slow path's
// Fetch may cross into the next executable page and succeed, so the outcome
// depends on bytes outside this frame. Any decode over a full MaxInstrLen
// window, and any in-window deterministic failure (bad opcode / bad
// encoding), depends only on this frame's bytes and is cacheable — including
// the failure itself, which is cached as a deterministic #UD slot.

// DecodeCacheStats reports decode-cache behaviour for one CPU. All counters
// except Pages and Entries are cumulative-on-CPU, under the same reset
// contract as BlockStats: they live on the CPU (CPU.dstats), not on the
// cache they describe, so they survive page flushes, SetDecodeCache
// toggles, and SetBlockEngine toggles, and reset only with the CPU itself
// (a Fork's child restarts at zero). Pages and Entries are the current live
// footprint and read zero while the cache is disabled.
type DecodeCacheStats struct {
	Hits          uint64 // fast-path dispatches from a pre-existing entry
	Misses        uint64 // lookups that had to decode or fall to the slow path
	Decoded       uint64 // instructions decoded into cache entries (ever)
	Invalidations uint64 // page flushes due to frame content changes
	Remaps        uint64 // page frame re-resolutions that swapped the frame
	Pages         uint64 // pages currently tracked
	Entries       uint64 // decoded entries currently live
}

// dcEntry is one predecoded instruction.
type dcEntry struct {
	in    isa.Instr
	cost  uint64
	ilen  uint8
	flags uint8 // dcEnd/dcStore/dcFW/dcFR/dcTrap classification (bcache.go)
}

// dcPage caches the decoded instructions of one executable virtual page,
// plus the superblocks formed over them (bcache.go).
type dcPage struct {
	frame   *mem.Frame // resolved frame; nil when last resolution failed
	fgen    uint64     // frame.Gen() the entries were decoded against
	mgen    uint64     // AddressSpace.MapGen() the frame was resolved at
	entries []dcEntry
	blocks  []dcBlock
	// idx maps page offset -> decode slot: 0 = not yet decoded,
	// >0 = entries[idx-1], -1 = deterministic in-page decode failure (#UD).
	idx [mem.PageSize]int32
	// blkIdx maps page offset -> superblock: 0 = not yet formed,
	// >0 = blocks[blkIdx-1], -1 = no block can start here (cached #UD or
	// an undecidable page-tail offset).
	blkIdx [mem.PageSize]int32
	// heat counts block-dispatch attempts per entry offset for the hotness
	// gate (bcache.go). Saturating bytes; deliberately NOT cleared by flush —
	// hotness measures the workload, not the cached bytes, so hot code
	// re-forms immediately after an invalidation.
	heat [mem.PageSize]uint8
}

// flush discards every cached decode — and every block formed over them —
// on the page.
func (p *dcPage) flush() {
	p.entries = p.entries[:0]
	p.blocks = p.blocks[:0]
	p.idx = [mem.PageSize]int32{}
	p.blkIdx = [mem.PageSize]int32{}
}

// fill decodes forward from off until the page is exhausted, a previously
// decoded offset is reached, or an uncacheable page-tail decode stops it.
func (p *dcPage) fill(off int, stats *DecodeCacheStats) {
	data := p.frame.Data[:]
	for off < mem.PageSize && p.idx[off] == 0 {
		end := off + isa.MaxInstrLen
		tail := false
		if end > mem.PageSize {
			end = mem.PageSize
			tail = true
		}
		in, ilen, err := isa.Decode(data[off:end])
		if err != nil {
			if tail && errors.Is(err, isa.ErrTruncated) {
				// The window was cut short by the page boundary: the slow
				// path's fetch may cross into the next executable page and
				// decode successfully, so the outcome depends on bytes this
				// frame does not own. Leave the offset undecided.
				return
			}
			// Deterministic failure on this frame's bytes alone.
			p.idx[off] = -1
			return
		}
		p.entries = append(p.entries, dcEntry{in: in, cost: in.Cost(), ilen: uint8(ilen), flags: entryFlags(in.Op)})
		p.idx[off] = int32(len(p.entries))
		stats.Decoded++
		off += ilen
	}
}

// dcTLBSize is the direct-mapped page-translation cache size. Syscall-heavy
// code ping-pongs between the user stub page, the kernel entry page, and a
// handful of handler pages every few instructions; a single hot-page slot
// thrashes on that pattern, while a small direct-mapped array absorbs it.
const dcTLBSize = 16

// decodeCache is the per-CPU translation cache. stats points at the owning
// CPU's cumulative counters (CPU.dstats), so dropping and rebuilding the
// cache never resets them.
type decodeCache struct {
	pages map[uint64]*dcPage // keyed by page base address
	tlb   [dcTLBSize]struct {
		base uint64
		p    *dcPage
	}
	stats *DecodeCacheStats
}

func newDecodeCache(stats *DecodeCacheStats) *decodeCache {
	return &decodeCache{pages: make(map[uint64]*dcPage), stats: stats}
}

// resolvePage returns the cache page for rip with its frame resolved and
// both generations validated (flushing stale decodes), or nil when the
// address is not executable — the slow path's Fetch produces the
// authoritative fault. Shared by the per-instruction lookup and the
// superblock lookup, so block entry revalidates exactly what a single-step
// lookup would.
func (dc *decodeCache) resolvePage(as *mem.AddressSpace, rip uint64) *dcPage {
	base := rip &^ uint64(mem.PageMask)
	sl := &dc.tlb[(rip>>mem.PageShift)&(dcTLBSize-1)]
	p := sl.p
	if p == nil || sl.base != base {
		p = dc.pages[base]
		if p == nil {
			p = &dcPage{}
			dc.pages[base] = p
		}
		sl.p, sl.base = p, base
	}

	if mgen := as.MapGen(); p.frame == nil || p.mgen != mgen {
		f, xok := as.ExecFrame(rip)
		if !xok {
			p.frame = nil
			dc.stats.Misses++
			return nil
		}
		if f != p.frame {
			if p.frame != nil {
				dc.stats.Remaps++
			}
			p.frame = f
			p.fgen = f.Gen()
			p.flush()
		}
		p.mgen = mgen
	}
	if g := p.frame.Gen(); g != p.fgen {
		p.flush()
		p.fgen = g
		dc.stats.Invalidations++
	}
	return p
}

// lookup resolves rip against the cache. It returns the entry to dispatch,
// or ud=true for a cached deterministic #UD, or ok=false when the slow path
// must run (page not executable, or uncacheable page-tail decode).
func (dc *decodeCache) lookup(as *mem.AddressSpace, rip uint64) (e *dcEntry, ud bool, ok bool) {
	p := dc.resolvePage(as, rip)
	if p == nil {
		return nil, false, false
	}

	off := int(rip & uint64(mem.PageMask))
	i := p.idx[off]
	if i != 0 {
		dc.stats.Hits++
	} else {
		dc.stats.Misses++
		p.fill(off, dc.stats)
		i = p.idx[off]
	}
	switch {
	case i > 0:
		return &p.entries[i-1], false, true
	case i < 0:
		return nil, true, true
	}
	return nil, false, false
}

// SetDecodeCache enables or disables the predecoded translation cache.
// Disabling drops all cached state (decodes, blocks, links, and the
// hotness counters); the cumulative counters — both DecodeCacheStats and
// the block-engine BlockStats — live on the CPU and survive, so a
// disable/enable cycle never zeroes history (only the live Pages/Entries
// footprint reads zero while off). Execution semantics are bit-identical
// either way — only host wall-clock changes.
func (c *CPU) SetDecodeCache(on bool) {
	if on {
		if c.dc == nil {
			c.dc = newDecodeCache(&c.dstats)
		}
		return
	}
	c.dc = nil
}

// DecodeCacheEnabled reports whether the translation cache is active.
func (c *CPU) DecodeCacheEnabled() bool { return c.dc != nil }

// DecodeCacheStats returns a snapshot of the cache counters. Pages and
// Entries reflect the current live footprint (zero while the cache is
// disabled); the rest are cumulative-on-CPU and survive cache toggles —
// the same contract as BlockStats.
func (c *CPU) DecodeCacheStats() DecodeCacheStats {
	s := c.dstats
	if c.dc == nil {
		return s
	}
	s.Pages = uint64(len(c.dc.pages))
	for _, p := range c.dc.pages {
		s.Entries += uint64(len(p.entries))
	}
	return s
}
