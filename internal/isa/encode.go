package isa

import (
	"encoding/binary"
	"fmt"
)

// Encoded instruction sizes are fully determined by the opcode format, so
// layout can be computed before symbol resolution (two-pass assembly).
const memRefBytes = 8

// MaxInstrLen is an upper bound on every encoded instruction length (the
// widest format, fmtMemImm32, is 13 bytes). Fetch windows and the decode
// cache size against it: a decode attempt over MaxInstrLen bytes can never
// fail with ErrTruncated.
const MaxInstrLen = 16

// formatLength returns the encoded length in bytes of an instruction with
// the given format.
func formatLength(f opFormat) int {
	switch f {
	case fmtNone:
		return 1
	case fmtReg:
		return 2
	case fmtRegImm64:
		return 10
	case fmtRegImm32:
		return 6
	case fmtRegImm8:
		return 3
	case fmtRegReg:
		return 3
	case fmtRegMem, fmtMemReg:
		return 2 + memRefBytes
	case fmtMemImm32:
		return 1 + memRefBytes + 4
	case fmtMem:
		return 1 + memRefBytes
	case fmtRel32:
		return 5
	case fmtCondRel32:
		return 6
	case fmtImm16:
		return 3
	case fmtString:
		return 2
	case fmtBndMem:
		return 2 + memRefBytes
	}
	return 1
}

// Length returns the encoded size of the instruction in bytes.
func (in Instr) Length() int {
	if !in.Op.Valid() {
		return 1
	}
	return formatLength(in.Op.Format())
}

// sizeLog2 maps an access size in bytes to its log2 for the mem mode byte.
func sizeLog2(size uint8) uint8 {
	switch size {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	default:
		return 3
	}
}

func encodeMem(dst []byte, m MemRef, size uint8) ([]byte, error) {
	if m.Sym != "" {
		return nil, fmt.Errorf("isa: unresolved symbol %q in memory operand", m.Sym)
	}
	var mode byte
	base, index := byte(0xFF), byte(0xFF)
	if m.HasBase() {
		if !m.Base.Valid() {
			return nil, fmt.Errorf("isa: invalid base register %d", m.Base)
		}
		mode |= 1
		base = byte(m.Base)
	}
	if m.HasIndex() {
		if !m.Index.Valid() {
			return nil, fmt.Errorf("isa: invalid index register %d", m.Index)
		}
		mode |= 2
		index = byte(m.Index)
	}
	if m.RIPRel {
		if m.HasBase() || m.HasIndex() {
			return nil, fmt.Errorf("isa: rip-relative reference cannot have base/index")
		}
		mode |= 4
	}
	scale := m.Scale
	if scale == 0 {
		scale = 1
	}
	switch scale {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("isa: invalid scale %d", m.Scale)
	}
	mode |= sizeLog2(size) << 4
	dst = append(dst, mode, base, index, scale)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Disp))
	return dst, nil
}

// Encode appends the byte encoding of the instruction to dst. The
// instruction must be fully resolved: symbolic labels, symbols, and tripwire
// references must already have been lowered to numeric displacements or
// immediates by the assembler.
func (in Instr) Encode(dst []byte) ([]byte, error) {
	if !in.Op.Valid() {
		return nil, fmt.Errorf("isa: invalid opcode 0x%02x", uint8(in.Op))
	}
	if in.Label != "" || in.Sym != "" || in.TripSym != "" {
		return nil, fmt.Errorf("isa: unresolved reference in %q", in.String())
	}
	dst = append(dst, byte(in.Op))
	var err error
	switch in.Op.Format() {
	case fmtNone:
	case fmtReg:
		if !in.Dst.Valid() {
			return nil, fmt.Errorf("isa: invalid register in %q", in.String())
		}
		dst = append(dst, byte(in.Dst))
	case fmtRegImm64:
		dst = append(dst, byte(in.Dst))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(in.Imm))
	case fmtRegImm32:
		dst = append(dst, byte(in.Dst))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
	case fmtRegImm8:
		dst = append(dst, byte(in.Dst), byte(in.Imm))
	case fmtRegReg:
		dst = append(dst, byte(in.Dst), byte(in.Src))
	case fmtRegMem:
		dst = append(dst, byte(in.Dst))
		dst, err = encodeMem(dst, in.M, in.AccessSize())
	case fmtMemReg:
		dst, err = encodeMem(dst, in.M, in.AccessSize())
		if err == nil {
			dst = append(dst, byte(in.Dst))
		}
	case fmtMemImm32:
		dst, err = encodeMem(dst, in.M, in.AccessSize())
		if err == nil {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
		}
	case fmtMem:
		dst, err = encodeMem(dst, in.M, in.AccessSize())
	case fmtRel32:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
	case fmtCondRel32:
		if !in.CC.Valid() {
			return nil, fmt.Errorf("isa: invalid condition in %q", in.String())
		}
		dst = append(dst, byte(in.CC))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
	case fmtImm16:
		dst = binary.LittleEndian.AppendUint16(dst, uint16(in.Imm))
	case fmtString:
		dst = append(dst, byte(in.SF))
	case fmtBndMem:
		if !in.Bnd.Valid() {
			return nil, fmt.Errorf("isa: invalid bound register in %q", in.String())
		}
		dst = append(dst, byte(in.Bnd))
		dst, err = encodeMem(dst, in.M, in.AccessSize())
	}
	if err != nil {
		return nil, err
	}
	return dst, nil
}
