// Package fuzz is the syscall fuzzer for the simulated kernel: a
// syzkaller-style loop of typed program generation, corpus-guided mutation,
// coverage feedback, optional fault injection, crash triage with
// deduplication, and reproducer minimization. Everything flows from one
// seed, so a run is replayable end to end: the same (seed, config, plan)
// triple produces a byte-identical report — for any worker count.
//
// # Sharded-campaign determinism
//
// The campaign is parallel without giving up replayability. Three rules
// make that work:
//
//  1. Every per-iteration random stream is derived from (Seed, iteration),
//     never drawn from a shared generator: program generation/mutation uses
//     ProgSeed(seed, i), fault injection uses InjSeed(seed, i). What
//     iteration i does therefore never depends on which worker ran it or
//     what ran before it on the same kernel.
//  2. The iteration space is executed in fixed-size batches (BatchSize,
//     independent of the worker count). Within a batch, workers execute
//     disjoint iteration shards against their own booted kernels; mutation
//     bases come from the corpus frozen at the previous batch boundary, so
//     the corpus state visible to iteration i is a pure function of the
//     options, not of scheduling.
//  3. A merge step folds each batch back in canonical iteration-index
//     order: coverage novelty, corpus growth, crash bucket ownership
//     (first iteration wins), and reproducer minimization are all decided
//     during the ordered merge.
//
// The result: krxfuzz -workers 1 and -workers 8 emit identical bytes.
//
// The building blocks are exported so other schedulers can reuse them
// under the same contract: an Executor executes programs against one booted
// kernel, and a Ledger folds ExecResults in canonical iteration order into
// a Report. The in-process Fuzzer below and the lease-based manager/worker
// service in internal/fuzzd are both thin schedulers over these two pieces
// — which is why the service's crash recovery, retries, and reassignment
// cannot change a single report byte.
package fuzz

import (
	"context"
	"fmt"
	mathbits "math/bits"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/store"
)

// Options configures one fuzzing campaign.
type Options struct {
	// Iters is the number of programs to execute.
	Iters int
	// Seed drives generation, mutation, and the per-iteration injector
	// seeds.
	Seed int64
	// Config is the kernel protection configuration to boot under.
	Config core.Config
	// Plan, when non-nil, arms fault injection: each iteration runs under a
	// fresh injector whose seed is derived from (Seed, iteration), so any
	// crash replays from its iteration number alone.
	Plan *inject.Plan
	// MaxMinimize caps the executions spent minimizing one crash (0 = 64).
	MaxMinimize int
	// Workers is the number of parallel execution workers (0 or 1 =
	// sequential). Each worker boots its own kernel from the shared build
	// cache and executes a deterministic shard of every batch; the report
	// is byte-identical for any value.
	Workers int
	// NoCoverage skips installing the per-instruction coverage probe. With
	// no probe the CPU's superblock fast path stays armed, so this is the
	// mode host-performance benchmarks use to measure what a campaign
	// *could* run at; corpus growth and crash triage need coverage, so a
	// real campaign must leave this false.
	NoCoverage bool
	// Fork boots a single golden kernel and stands the remaining workers up
	// as copy-on-write forks of its boot snapshot (kernel.Fork) instead of
	// booting each one: workers share every unwritten frame and start with
	// the golden kernel's warm decode cache. Reports are byte-identical to
	// boot-per-worker mode at any worker count — emulated semantics cannot
	// observe frame identity or host cache warmth — which TestForkReport-
	// Identical and the CI cmp gates enforce.
	Fork bool
	// Checkpoint, when non-nil, persists the campaign ledger to this store
	// at every batch boundary and resumes from the stored checkpoint on
	// start: a killed campaign (or a warm-starting worker fleet) continues
	// from its last completed batch, and the resumed run finalizes to the
	// byte-identical report of an uninterrupted one. Incompatible with
	// Trace (the event stream is not checkpointed).
	Checkpoint store.Store
	// Trace arms per-iteration event tracing: every worker records
	// snapshot/restore, syscall enter/exit, trap, and injected-fault events,
	// and the merge folds them into Report.Trace in canonical iteration
	// order. Timestamps are the emulated counters, which Restore rewinds to
	// the boot snapshot before every iteration, so the merged stream is
	// byte-identical for any worker count.
	Trace bool
}

// OptionsError is the typed validation error New and NewExecutor return for
// an out-of-range Options field.
type OptionsError struct {
	Field  string
	Value  int
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("fuzz: invalid Options.%s = %d: %s", e.Field, e.Value, e.Reason)
}

// Normalize validates the options and fills in defaults: negative counts
// are rejected with an *OptionsError; zero values take their documented
// defaults. Idempotent.
func (o *Options) Normalize() error {
	switch {
	case o.Iters < 0:
		return &OptionsError{Field: "Iters", Value: o.Iters, Reason: "must be >= 0 (0 = default 1000)"}
	case o.Workers < 0:
		return &OptionsError{Field: "Workers", Value: o.Workers, Reason: "must be >= 0 (0 = sequential)"}
	case o.MaxMinimize < 0:
		return &OptionsError{Field: "MaxMinimize", Value: o.MaxMinimize, Reason: "must be >= 0 (0 = default 64)"}
	}
	if o.Iters == 0 {
		o.Iters = 1000
	}
	if o.MaxMinimize == 0 {
		o.MaxMinimize = 64
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Checkpoint != nil && o.Trace {
		return fmt.Errorf("fuzz: Options.Checkpoint is incompatible with Trace (the event stream is not checkpointed)")
	}
	return nil
}

// NoWorkersError is the typed error returned by Kernel, Kernels, and Run on
// a Fuzzer with no booted workers — a zero-value Fuzzer, not one built by
// New, which always boots at least one.
type NoWorkersError struct {
	Op string
}

func (e *NoWorkersError) Error() string {
	return "fuzz: " + e.Op + ": fuzzer has no workers (not built by New)"
}

// BatchSize is the number of iterations executed between corpus merges. It
// is a protocol constant — NOT derived from the worker count — because the
// corpus snapshot an iteration mutates from is "the corpus after the last
// whole batch", and that must mean the same thing under any parallelism.
// The fuzzd service leases sub-ranges of these same batches, so its reports
// land on identical bytes.
const BatchSize = 64

// Crash is one deduplicated crash bucket.
type Crash struct {
	Bucket string // trap kind + containing function (the dedup key)
	Count  int    // programs that landed in this bucket
	Iter   int    // first iteration that hit it (replay handle)
	Prog   *Prog  // first crashing program
	Min    *Prog  // minimized reproducer
}

// ReportSchemaVersion identifies the JSON layout of Report. Bump it on any
// field change so downstream consumers can detect the format.
//
// v2: added Partial (graceful-shutdown reports cover a batch-aligned prefix
// of the requested iterations; Iters reports the completed count).
const ReportSchemaVersion = 2

// Report is the campaign result. String() is deterministic: same options in,
// same bytes out, regardless of Options.Workers.
type Report struct {
	SchemaVersion int `json:"schema_version"`

	// Partial marks a report cut short by cancellation (SIGINT/SIGTERM):
	// the campaign drained its in-flight batch and merged every completed
	// batch, so the report is the canonical report of the first Iters
	// iterations — a byte-identical prefix of the full campaign's ledger.
	Partial bool `json:"partial"`

	Iters    int
	Seed     int64
	Config   string
	Crashes  []*Crash // sorted by bucket
	Cover    int      // distinct kernel RIPs executed (minimization excluded)
	Faults   int      // total injected faults
	Executed int      // total syscalls issued (incl. minimization)

	// AuditViolations counts failed audit checks observed after injected
	// faults, keyed by check name — the "graceful degradation" ledger:
	// invariant breakage is reported, never silently absorbed.
	AuditViolations map[string]int

	// Trace is the merged campaign event stream (Options.Trace), in
	// canonical iteration order with renumbered sequence numbers. Excluded
	// from String() — trace identity is asserted via obs.TraceText.
	Trace []obs.Event `json:",omitempty"`
}

// String renders the report deterministically (sorted buckets, sorted
// checks, no map iteration, no worker-count dependence).
func (r *Report) String() string {
	partial := ""
	if r.Partial {
		partial = " partial=true"
	}
	s := fmt.Sprintf("fuzz: config=%s seed=%d iters=%d syscalls=%d cover=%d faults=%d crashes=%d%s\n",
		r.Config, r.Seed, r.Iters, r.Executed, r.Cover, r.Faults, len(r.Crashes), partial)
	for _, c := range r.Crashes {
		s += fmt.Sprintf("  crash %-40s count=%-5d iter=%-5d repro: %s\n",
			c.Bucket, c.Count, c.Iter, c.Min.String())
	}
	checks := make([]string, 0, len(r.AuditViolations))
	for k := range r.AuditViolations {
		checks = append(checks, k)
	}
	sort.Strings(checks)
	for _, k := range checks {
		s += fmt.Sprintf("  audit-violation %-30s count=%d\n", k, r.AuditViolations[k])
	}
	return s
}

// InjSeed derives iteration iter's injector seed from the master seed. The
// mixing constant keeps adjacent iterations' streams unrelated.
func InjSeed(seed int64, iter int) int64 {
	return seed ^ (int64(iter)+1)*0x2545f4914f6cdd1d
}

// ProgSeed derives iteration iter's generation/mutation seed. A constant
// distinct from InjSeed's keeps the two per-iteration streams independent.
func ProgSeed(seed int64, iter int) int64 {
	return seed ^ (int64(iter)+1)*-0x61c8864680b583eb // golden-ratio mix
}

// PickProg draws the program for iteration iter from a corpus snapshot: a
// fresh generation while the corpus is cold, afterwards mostly mutations of
// corpus entries. The whole decision consumes only the iteration's own
// derived RNG, so it is identical under any scheduling — the function every
// scheduler (the in-process Fuzzer, the fuzzd workers, and the manager's
// quarantine path) must agree on.
func PickProg(seed int64, iter int, corpus []*Prog, kaddrs []uint64) *Prog {
	g := &generator{rng: rand.New(rand.NewSource(ProgSeed(seed, iter))), kaddrs: kaddrs}
	r := g.rng
	if len(corpus) == 0 || r.Intn(4) == 0 {
		return g.Generate(1 + r.Intn(5))
	}
	base := corpus[r.Intn(len(corpus))]
	var other *Prog
	if len(corpus) > 1 {
		other = corpus[r.Intn(len(corpus))]
	}
	return g.Mutate(base, other)
}

// Fuzzer is one campaign in progress.
type Fuzzer struct {
	opts    Options
	workers []*Executor
	kaddrs  []uint64 // interesting kernel addresses, shared read-only
	ledger  *Ledger

	// batchHook, when set, runs after every merged batch with the count of
	// iterations folded so far — the test seam for exercising mid-campaign
	// cancellation at a deterministic boundary.
	batchHook func(done int)
}

type funcSpan struct {
	name       string
	start, end uint64
}

// Executor owns one booted kernel and executes programs against it — the
// unit a scheduler hands work to. Executors never touch shared campaign
// state; everything they learn travels back in ExecResults and is folded in
// by a Ledger in canonical iteration order.
type Executor struct {
	opts     Options
	k        *kernel.Kernel
	snap     *kernel.Snapshot
	tracer   *obs.Tracer // non-nil when Options.Trace
	funcs    []funcSpan  // image functions sorted by address, for bucketing
	kaddrs   []uint64
	curCover map[uint64]struct{} // rips outside the text bitmap (user stubs, modules)

	// Kernel-text coverage is tracked in a bitmap instead of a map: the
	// OnExec hook runs once per executed instruction, making it the single
	// hottest callback in a campaign, and a test-and-set on a word beats a
	// map assign by an order of magnitude. covWords remembers which words
	// were touched so reset and collection stay proportional to the
	// coverage actually observed, not to the text size.
	covBase  uint64
	covSpan  uint64
	covBits  []uint64
	covWords []uint32
}

// New boots the campaign's kernels (one per worker, all sharing one cached
// build) and prepares the campaign. Each boot snapshot is taken after user
// memory seeding, so every iteration starts from an identical machine. With
// Options.Fork set, only worker 0 boots; the rest are copy-on-write forks
// of its snapshot — identical machines by construction.
func New(opts Options) (*Fuzzer, error) {
	if err := opts.Normalize(); err != nil {
		return nil, err
	}
	f := &Fuzzer{opts: opts}
	for i := 0; i < opts.Workers; i++ {
		var w *Executor
		var err error
		if opts.Fork && i > 0 {
			w, err = f.workers[0].Fork()
		} else {
			w, err = NewExecutor(opts)
		}
		if err != nil {
			return nil, err
		}
		f.workers = append(f.workers, w)
	}
	f.kaddrs = f.workers[0].Kaddrs()
	f.ledger = NewLedger(opts, f.workers[0])
	if _, err := f.ledger.LoadCheckpoint(); err != nil {
		return nil, err
	}
	return f, nil
}

// NewExecutor boots one worker kernel (through the shared build cache),
// seeds user memory, installs the coverage probe, and snapshots the machine
// so every Exec starts from an identical state.
func NewExecutor(opts Options) (*Executor, error) {
	if err := opts.Normalize(); err != nil {
		return nil, err
	}
	bootOpts := []kernel.BootOption{kernel.WithCache()}
	var tr *obs.Tracer
	if opts.Trace {
		tr = obs.NewTracer(0)
		bootOpts = append(bootOpts, kernel.WithTracer(tr))
	}
	k, err := kernel.Boot(opts.Config, bootOpts...)
	if err != nil {
		return nil, fmt.Errorf("fuzz: boot: %w", err)
	}
	if err := SetupUserMemory(k); err != nil {
		return nil, fmt.Errorf("fuzz: seeding user memory: %w", err)
	}
	w := &Executor{opts: opts, k: k, tracer: tr, curCover: make(map[uint64]struct{})}
	for _, fn := range k.Img.Funcs {
		w.funcs = append(w.funcs, funcSpan{name: fn.Name, start: fn.Addr, end: fn.Addr + fn.Size})
	}
	sort.Slice(w.funcs, func(i, j int) bool { return w.funcs[i].start < w.funcs[j].start })
	w.kaddrs = interestingKaddrs(k)

	w.covBase = k.Sym("_text")
	w.covSpan = uint64(len(k.Img.Text))
	w.covBits = make([]uint64, (w.covSpan+63)/64)

	// Coverage probe, installed once at boot; per-iteration injectors append
	// after it, so coverage sees each instruction first — the same order the
	// old OnExec chaining produced. Snapshot/Restore leaves probes alone.
	// NoCoverage (benchmark mode) skips it: any installed exec probe disarms
	// the CPU's superblock fast path, and the probe callback itself is the
	// hottest per-instruction cost in a campaign.
	if !opts.NoCoverage {
		k.CPU.AddProbe(w)
	}
	w.snap = k.Snapshot()
	return w, nil
}

// Fork stands up a new executor whose kernel is a copy-on-write fork of
// this executor's machine (kernel.Fork): frames, and the warm decode cache,
// are shared until first write, so the child costs a few map clones instead
// of a boot plus warmup. The parent must be at its snapshot point — freshly
// built by NewExecutor, or restored — which is where fuzz.New and the fuzzd
// transport call it from. The child takes its own boot snapshot and behaves
// exactly like a NewExecutor-built worker from then on: byte-identical
// execution, reports, and traces.
func (w *Executor) Fork() (*Executor, error) {
	var forkOpts []kernel.BootOption
	var tr *obs.Tracer
	if w.opts.Trace {
		tr = obs.NewTracer(0)
		forkOpts = append(forkOpts, kernel.WithTracer(tr))
	}
	k, err := w.k.Fork(forkOpts...)
	if err != nil {
		return nil, fmt.Errorf("fuzz: fork: %w", err)
	}
	nw := &Executor{
		opts:     w.opts,
		k:        k,
		tracer:   tr,
		funcs:    w.funcs, // sorted once, never mutated — shareable
		kaddrs:   w.kaddrs,
		curCover: make(map[uint64]struct{}),
		covBase:  w.covBase,
		covSpan:  w.covSpan,
		covBits:  make([]uint64, len(w.covBits)),
	}
	if !w.opts.NoCoverage {
		k.CPU.AddProbe(nw)
	}
	nw.snap = k.Snapshot()
	return nw, nil
}

// Kernel returns the executor's booted kernel.
func (w *Executor) Kernel() *kernel.Kernel { return w.k }

// Kaddrs returns the interesting kernel addresses program generation aims
// at. They depend only on the configuration (layout diversification is
// seeded by Config.Seed), so every executor of a campaign agrees on them.
func (w *Executor) Kaddrs() []uint64 { return w.kaddrs }

// OnExec implements cpu.ExecProbe: the coverage bitmap. It runs once per
// executed instruction — the hottest callback in a campaign — so kernel-text
// RIPs take the test-and-set fast path and only stray RIPs fall back to the
// map.
func (w *Executor) OnExec(rip uint64, in *isa.Instr, cycles uint64) {
	if off := rip - w.covBase; off < w.covSpan {
		word, bit := off>>6, uint64(1)<<(off&63)
		if w.covBits[word]&bit == 0 {
			if w.covBits[word] == 0 {
				w.covWords = append(w.covWords, uint32(word))
			}
			w.covBits[word] |= bit
		}
		return
	}
	w.curCover[rip] = struct{}{}
}

// interestingKaddrs collects the kernel addresses worth aiming leak/plant
// style arguments at, in deterministic order.
func interestingKaddrs(k *kernel.Kernel) []uint64 {
	names := []string{
		"_text", "_krx_edata", "cred", "sys_call_table", "dentry_table",
		"fault_count", "task_cur", "sigactions", "vma_table", "pgtable_arr",
		"brk_ptr", "krx_handler", "syscall_entry",
	}
	var out []uint64
	for _, n := range names {
		if a := k.Sym(n); a != 0 {
			out = append(out, a)
		}
	}
	out = append(out, k.KernelStackBase)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// injSeed derives the iteration's injector seed from the master seed.
func (f *Fuzzer) injSeed(iter int) int64 { return InjSeed(f.opts.Seed, iter) }

// ExecResult is one program execution's outcome, self-contained so a merge
// step can fold it in without touching the executor again — and so the
// fuzzd workers can ship it across the lease protocol unchanged.
type ExecResult struct {
	Bucket   string // "" = clean run
	CrashIdx int    // index of the crashing call
	Faults   int    // faults injected during the run
	AuditBad []string
	Cover    []uint64    // distinct RIPs executed, unordered
	NExec    int         // syscalls issued
	Trace    []obs.Event // iteration event stream (Options.Trace)
}

// Exec restores the snapshot and runs prog, with fault injection when the
// campaign has a plan. The injector seed is passed explicitly so
// minimization can replay an iteration's exact fault stream.
func (w *Executor) Exec(prog *Prog, injSeed int64) (ExecResult, error) {
	var res ExecResult
	if w.tracer != nil {
		// Start the iteration's stream empty; Restore below rewinds the
		// emulated clock to the boot snapshot, so every iteration's events
		// carry identical, scheduling-independent timestamps.
		w.tracer.Reset()
	}
	if err := w.k.Restore(w.snap); err != nil {
		return res, fmt.Errorf("fuzz: restore: %w", err)
	}
	for rip := range w.curCover {
		delete(w.curCover, rip)
	}
	for _, word := range w.covWords {
		w.covBits[word] = 0
	}
	w.covWords = w.covWords[:0]

	var inj *inject.Injector
	if w.opts.Plan != nil {
		plan := *w.opts.Plan
		plan.Seed = injSeed
		inj = inject.New(plan)
		if w.tracer != nil {
			inj.Sink = func(e inject.Event) {
				w.tracer.Emit(obs.EvFault, e.Kind, e.Addr, 0)
			}
		}
		inj.Attach(w.k.CPU, w.k.Space.AS, w.k.FaultTargets())
	}

	res.CrashIdx = -1
	for i, c := range prog.Calls {
		r := w.k.Syscall(c.Nr, c.Args[0], c.Args[1], c.Args[2])
		res.NExec++
		if r.Failed {
			res.Bucket = w.bucketOf(r)
			res.CrashIdx = i
			break
		}
	}
	if inj != nil {
		inj.Detach()
		res.Faults = len(inj.Events)
	}

	// Invariant check: after any injected fault (or crash), the protections
	// must either still hold or report exactly which check broke.
	if res.Faults > 0 || res.Bucket != "" {
		rep := audit.Audit(w.k)
		for _, fd := range rep.Findings {
			if !fd.OK {
				res.AuditBad = append(res.AuditBad, fd.Check)
			}
		}
	}

	res.Cover = make([]uint64, 0, len(w.curCover)+8*len(w.covWords))
	for rip := range w.curCover {
		res.Cover = append(res.Cover, rip)
	}
	for _, word := range w.covWords {
		bits := w.covBits[word]
		base := w.covBase + uint64(word)<<6
		for bits != 0 {
			res.Cover = append(res.Cover, base+uint64(mathbits.TrailingZeros64(bits)))
			bits &= bits - 1
		}
	}
	if w.tracer != nil {
		res.Trace = w.tracer.Take()
	}
	return res, nil
}

// exec runs prog on the campaign's first worker — the replay entry point
// tests use to re-execute reproducers under an iteration's injector seed.
func (f *Fuzzer) exec(prog *Prog, injSeed int64) (ExecResult, error) {
	return f.workers[0].Exec(prog, injSeed)
}

// Kernel returns the first worker's booted kernel — the instance the
// benchmark harness inspects (e.g. for decode-cache configuration).
func (f *Fuzzer) Kernel() (*kernel.Kernel, error) {
	if len(f.workers) == 0 {
		return nil, &NoWorkersError{Op: "Kernel"}
	}
	return f.workers[0].k, nil
}

// Kernels returns every worker's booted kernel, in worker order — the
// observability tests attach one profiler per worker and toggle each
// worker's decode cache through this.
func (f *Fuzzer) Kernels() ([]*kernel.Kernel, error) {
	if len(f.workers) == 0 {
		return nil, &NoWorkersError{Op: "Kernels"}
	}
	ks := make([]*kernel.Kernel, len(f.workers))
	for i, w := range f.workers {
		ks[i] = w.k
	}
	return ks, nil
}

// ExecIteration re-executes iteration i exactly as the campaign's first
// worker would — restore the boot snapshot, derive the iteration's program
// from the current corpus, run it under the iteration's injector seed — and
// returns the emulated cycles consumed. What runs depends only on (Seed, i)
// and the corpus state, so benchmark loops over it are deterministic.
func (f *Fuzzer) ExecIteration(i int) (uint64, error) {
	if len(f.workers) == 0 {
		return 0, &NoWorkersError{Op: "ExecIteration"}
	}
	w := f.workers[0]
	prog := PickProg(f.opts.Seed, i, f.ledger.Corpus(), f.kaddrs)
	// Restore first to anchor the cycle baseline; Exec's own restore of the
	// same snapshot is idempotent.
	if err := w.k.Restore(w.snap); err != nil {
		return 0, err
	}
	base := w.k.CPU.Cycles
	if _, err := w.Exec(prog, f.injSeed(i)); err != nil {
		return 0, err
	}
	return w.k.CPU.Cycles - base, nil
}

// bucketOf maps a failed syscall to its dedup bucket: the failure class plus
// the function containing the faulting RIP (so the same root cause at
// different addresses across diversified layouts still groups sensibly
// within one image).
func (w *Executor) bucketOf(r *kernel.SyscallResult) string {
	if r.Err != nil {
		if be, ok := r.Err.(*cpu.BudgetError); ok {
			return "watchdog/" + w.funcAt(be.RIP)
		}
		return "harness-panic"
	}
	res := r.Run
	switch res.Reason {
	case cpu.StopHalt:
		return "halt/" + w.funcAt(res.HaltRIP)
	case cpu.StopTrap:
		if res.Trap != nil {
			return res.Trap.Kind.String() + "/" + w.funcAt(res.Trap.RIP)
		}
		return "trap/?"
	default:
		return "stop-" + res.Reason.String()
	}
}

// funcAt names the image function containing rip; addresses outside the
// image coarsen to 64-byte buckets so unknown-RIP crashes still dedup.
func (w *Executor) funcAt(rip uint64) string {
	i := sort.Search(len(w.funcs), func(i int) bool { return w.funcs[i].end > rip })
	if i < len(w.funcs) && rip >= w.funcs[i].start {
		return w.funcs[i].name
	}
	if rip < kernel.UserStack+16*4096 {
		return "user"
	}
	return fmt.Sprintf("rip-%#x", rip>>6<<6)
}

// Ledger is the campaign's single-writer merge state: the corpus, the
// global coverage map, the crash buckets, and the report under
// construction. Fold must be called exactly once per iteration, in
// canonical iteration order — the one rule that makes any scheduler
// (strided goroutines, leased batches, quarantined retries) produce the
// same bytes. The ledger itself is not goroutine-safe; schedulers serialize
// into it.
type Ledger struct {
	opts    Options
	min     *Executor // executes minimization candidates (deterministic replays)
	corpus  []*Prog
	cover   map[uint64]struct{}
	crashes map[string]*Crash
	report  *Report
	done    int
}

// NewLedger creates the merge state for one campaign. min is the executor
// reproducer minimization replays on; any executor of the campaign yields
// identical results (every Exec restores the boot snapshot), so the choice
// never shows in the report.
func NewLedger(opts Options, min *Executor) *Ledger {
	return &Ledger{
		opts:    opts,
		min:     min,
		cover:   make(map[uint64]struct{}),
		crashes: make(map[string]*Crash),
		report: &Report{
			SchemaVersion:   ReportSchemaVersion,
			Iters:           opts.Iters,
			Seed:            opts.Seed,
			Config:          opts.Config.Name(),
			AuditViolations: make(map[string]int),
		},
	}
}

// Corpus returns the frozen corpus snapshot iterations of the next batch
// mutate from: capacity-clamped, so merge-time appends cannot leak into a
// batch already executing against it.
func (l *Ledger) Corpus() []*Prog {
	return l.corpus[:len(l.corpus):len(l.corpus)]
}

// Done reports how many iterations have been folded.
func (l *Ledger) Done() int { return l.done }

// Fold merges iteration iter's execution into the campaign. Everything
// order-sensitive — coverage novelty, corpus membership, which iteration
// owns a crash bucket, minimization's execution budget — is decided here,
// sequentially, so the outcome is independent of how the iteration was
// scheduled, retried, or reassigned.
func (l *Ledger) Fold(iter int, prog *Prog, res ExecResult) {
	l.done++
	l.report.Executed += res.NExec
	l.report.Faults += res.Faults
	l.report.Trace = append(l.report.Trace, res.Trace...)
	for _, check := range res.AuditBad {
		l.report.AuditViolations[check]++
	}
	newCover := false
	for _, rip := range res.Cover {
		if _, ok := l.cover[rip]; !ok {
			newCover = true
			l.cover[rip] = struct{}{}
		}
	}
	if res.Bucket != "" {
		repro := &Prog{Calls: prog.Calls[:res.CrashIdx+1]}
		if c, ok := l.crashes[res.Bucket]; ok {
			c.Count++
		} else {
			c = &Crash{Bucket: res.Bucket, Count: 1, Iter: iter, Prog: repro.Clone()}
			c.Min = l.minimize(repro, res.Bucket, InjSeed(l.opts.Seed, iter))
			l.crashes[res.Bucket] = c
		}
		return
	}
	if newCover {
		l.corpus = append(l.corpus, prog)
	}
}

// Finalize assembles the report: sorted crash buckets, the coverage count,
// renumbered trace. partial marks a cancelled campaign; Iters then reports
// the iterations actually folded, so the partial report is byte-identical
// (bar the partial marker) to a full campaign over that prefix.
func (l *Ledger) Finalize(partial bool) *Report {
	for _, c := range l.crashes {
		l.report.Crashes = append(l.report.Crashes, c)
	}
	sort.Slice(l.report.Crashes, func(i, j int) bool {
		return l.report.Crashes[i].Bucket < l.report.Crashes[j].Bucket
	})
	l.report.Cover = len(l.cover)
	l.report.Partial = partial
	l.report.Iters = l.done
	obs.Renumber(l.report.Trace)
	return l.report
}

// minimize shrinks a crashing program to the shortest syscall sequence that
// still lands in the same bucket, re-executing candidates under the
// iteration's exact injector seed. Delta-removal repeats until a full pass
// removes nothing (or the execution budget runs out). Minimization runs on
// the ledger's executor, during the ordered merge, so its executions are
// counted deterministically; its coverage is deliberately not folded into
// the campaign's coverage map.
func (l *Ledger) minimize(prog *Prog, bucket string, injSeed int64) *Prog {
	min := prog.Clone()
	budget := l.opts.MaxMinimize
	for changed := true; changed && len(min.Calls) > 1; {
		changed = false
		for i := len(min.Calls) - 1; i >= 0 && len(min.Calls) > 1; i-- {
			if budget <= 0 {
				return min
			}
			cand := &Prog{Calls: append(append([]Call{}, min.Calls[:i]...), min.Calls[i+1:]...)}
			res, err := l.min.Exec(cand, injSeed)
			budget--
			if err == nil {
				l.report.Executed += res.NExec
				if res.Bucket == bucket {
					min = cand
					changed = true
				}
			}
		}
	}
	return min
}

// iterOut is one iteration's completed execution, parked until the merge.
type iterOut struct {
	prog *Prog
	res  ExecResult
	err  error
}

// Run executes the campaign and returns its report.
func (f *Fuzzer) Run() (*Report, error) {
	return f.RunContext(context.Background())
}

// RunContext executes the campaign under ctx. Cancellation is graceful and
// batch-aligned: the in-flight batch drains and merges, then the ledger is
// finalized with Partial set — the canonical report of the completed
// prefix, never a torn one.
func (f *Fuzzer) RunContext(ctx context.Context) (*Report, error) {
	if len(f.workers) == 0 {
		return nil, &NoWorkersError{Op: "Run"}
	}
	// A checkpoint-restored ledger starts mid-campaign: resume at the first
	// unfolded iteration (always a batch boundary — saves are batch-aligned).
	done := f.ledger.Done()
	for lo := done; lo < f.opts.Iters; lo += BatchSize {
		if ctx.Err() != nil {
			break
		}
		hi := lo + BatchSize
		if hi > f.opts.Iters {
			hi = f.opts.Iters
		}
		// The corpus snapshot every iteration of this batch mutates from:
		// frozen length, so merge-time appends cannot leak into the batch.
		snapshot := f.ledger.Corpus()
		results := make([]iterOut, hi-lo)

		nw := f.opts.Workers
		if nw > hi-lo {
			nw = hi - lo
		}
		if nw <= 1 {
			for i := lo; i < hi; i++ {
				prog := PickProg(f.opts.Seed, i, snapshot, f.kaddrs)
				res, err := f.workers[0].Exec(prog, f.injSeed(i))
				results[i-lo] = iterOut{prog: prog, res: res, err: err}
			}
		} else {
			var wg sync.WaitGroup
			for wi := 0; wi < nw; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					w := f.workers[wi]
					for i := lo + wi; i < hi; i += nw {
						prog := PickProg(f.opts.Seed, i, snapshot, f.kaddrs)
						res, err := w.Exec(prog, f.injSeed(i))
						results[i-lo] = iterOut{prog: prog, res: res, err: err}
					}
				}(wi)
			}
			wg.Wait()
		}

		for i := lo; i < hi; i++ {
			out := results[i-lo]
			if out.err != nil {
				return nil, out.err
			}
			f.ledger.Fold(i, out.prog, out.res)
		}
		done = hi
		if err := f.ledger.SaveCheckpoint(); err != nil {
			return nil, err
		}
		if f.batchHook != nil {
			f.batchHook(done)
		}
	}
	return f.ledger.Finalize(done < f.opts.Iters), nil
}

// Fuzz is the one-call entry point: boot, run, report.
func Fuzz(opts Options) (*Report, error) {
	f, err := New(opts)
	if err != nil {
		return nil, err
	}
	return f.Run()
}
