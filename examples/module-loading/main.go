// Module-loading demonstrates the kR^X-KAS-aware module loader-linker: a
// module object is compiled through the same krx/kaslr pipeline as the
// kernel, its text is sliced into the execute-only modules_text region
// (physmap synonym closed), its data lands in modules_data, and unloading
// zaps the text frames.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/diversify"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/module"
	"repro/internal/sfi"
)

func buildModule() *module.Object {
	entry, err := ir.NewBuilder("hello_init").
		I(
			isa.MovSym(isa.R8, "hello_count"),
			isa.Load(isa.RAX, isa.Mem(isa.R8, 0)),
			isa.Inc(isa.RAX),
			isa.Store(isa.Mem(isa.R8, 0), isa.RAX),
			isa.Ret(),
		).Func()
	if err != nil {
		log.Fatal(err)
	}
	return &module.Object{
		Name: "hello",
		Prog: &ir.Program{
			Funcs: []*ir.Function{entry},
			Data:  []ir.DataSym{{Name: "hello_count", Bytes: make([]byte, 8)}},
		},
	}
}

func main() {
	cfg := core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 7}
	k, err := kernel.Boot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	loader := module.NewLoader(k)
	m, err := loader.Load(buildModule())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded module %q:\n  .text  -> modules_text %#x (+%d bytes, execute-only)\n  .data  -> modules_data %#x (+%d bytes)\n",
		m.Name, m.TextAddr, m.TextSize, m.DataAddr, m.DataSize)

	// Run the module's init function in kernel context.
	stack, err := k.Space.AllocMapped(2)
	if err != nil {
		log.Fatal(err)
	}
	top := stack + 2*mem.PageSize - 16
	k.CPU.Mode = cpu.Kernel
	k.CPU.SetReg(isa.RSP, top)
	if f := k.Space.AS.Write(top, cpu.StopMagic, 8); f != nil {
		log.Fatal(f)
	}
	k.CPU.RIP = m.Symbols["hello_init"]
	res := k.CPU.Run(1 << 16)
	fmt.Printf("hello_init() -> %v, hello_count=%d\n", res.Reason, k.CPU.Reg(isa.RAX))

	// The attacker's view: module text is as unreadable as kernel text.
	leak := k.Syscall(kernel.SysLeak, m.TextAddr)
	fmt.Printf("leak(module .text)  -> violation=%v\n", k.Violated(leak))
	leak = k.Syscall(kernel.SysLeak, m.Symbols["hello_count"])
	fmt.Printf("leak(module .data)  = %d (readable, as it should be)\n", leak.Ret)

	if err := loader.Unload("hello"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("module unloaded: text frames zapped, physmap synonym restored")
}
