package audit

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sfi"
)

func boot(t *testing.T, cfg core.Config) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAuditPassesOnEveryPreset(t *testing.T) {
	for _, cfg := range core.Presets() {
		cfg.Seed = 77
		k := boot(t, cfg)
		rep := Audit(k)
		if !rep.OK() {
			t.Errorf("%s:\n%s", cfg.Name(), rep)
		}
	}
}

func TestAuditHideM(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMHideM, Seed: 82})
	rep := Audit(k)
	if !rep.OK() {
		t.Fatalf("HideM kernel fails audit:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "hidem shadows") {
		t.Fatal("HideM shadow check missing")
	}
}

func TestAuditPassesWithExtensions(t *testing.T) {
	k := boot(t, core.Config{
		XOM: core.XOMSFI, SFILevel: sfi.O3,
		Diversify: true, RAProt: diversify.RAEncrypt,
		RegRand: true, FullCoverage: true, Seed: 78,
	})
	rep := Audit(k)
	if !rep.OK() {
		t.Fatalf("extended config fails audit:\n%s", rep)
	}
}

func TestAuditDetectsWXViolation(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 79})
	// Sabotage: make a text page writable too (the Appendix A bug's
	// effect, from the other direction).
	text := k.Sym("_text") &^ uint64(mem.PageMask)
	if err := k.Space.AS.Protect(text, 1, mem.PermRWX); err != nil {
		t.Fatal(err)
	}
	rep := Audit(k)
	if rep.OK() {
		t.Fatal("audit must flag the W+X page")
	}
	if !strings.Contains(rep.String(), "W^X") {
		t.Fatalf("wrong finding:\n%s", rep)
	}
}

func TestAuditDetectsLingeringSynonym(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 80})
	// Sabotage: re-map the physmap alias of the first text page.
	pfn, ok := k.Space.RegionPFN(".text")
	if !ok {
		t.Fatal("no .text pfn")
	}
	frames, err := k.Space.AS.FramesAt(k.Sym("_text")&^uint64(mem.PageMask), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Space.AS.MapFrames(kas_PhysmapAddr(pfn), frames, mem.PermR); err != nil {
		t.Fatal(err)
	}
	rep := Audit(k)
	if rep.OK() {
		t.Fatal("audit must flag the readable code synonym")
	}
}

func kas_PhysmapAddr(pfn int) uint64 { return 0xffff880000000000 + uint64(pfn)<<12 }

func TestAuditDetectsZeroedKeys(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 81})
	// Sabotage: zero one key (as if replenishment was skipped).
	for _, addr := range k.Img.KeyAddrs {
		if err := k.Space.AS.Poke(addr, make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
		break
	}
	rep := Audit(k)
	if rep.OK() {
		t.Fatal("audit must flag the unreplenished key")
	}
}

func TestReportFormatting(t *testing.T) {
	k := boot(t, core.Vanilla)
	rep := Audit(k)
	out := rep.String()
	if !strings.Contains(out, "W^X") || !strings.Contains(out, "ok") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}
