package isa

import "testing"

// FuzzDecode: the decoder must never panic and must report in-bounds
// lengths on arbitrary byte soup (the gadget scanner feeds it exactly
// that).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0xC3})
	f.Add([]byte{0xCC, 0xCC, 0xCC})
	f.Add([]byte{byte(MOVri), 11, 0xCC, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{byte(JCC), 3, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{byte(MOVrm), 0, 0x33, 4, 7, 8, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, b []byte) {
		in, n, err := Decode(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("length %d out of bounds (%d)", n, len(b))
		}
		// A decoded instruction re-encodes without error to the same
		// number of bytes.
		enc, err := in.Encode(nil)
		if err != nil {
			t.Fatalf("re-encode of decoded %q failed: %v", in.String(), err)
		}
		if len(enc) != n {
			t.Fatalf("re-encode length %d != decode length %d", len(enc), n)
		}
	})
}
