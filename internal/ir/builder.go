package ir

import (
	"fmt"

	"repro/internal/isa"
)

// Builder constructs functions block by block. It is the "assembler syntax"
// used by the mini-kernel sources and by tests.
type Builder struct {
	fn  *Function
	cur *Block
	err error
}

// NewBuilder starts a function. The entry block is created implicitly with
// the label "entry".
func NewBuilder(name string) *Builder {
	b := &Builder{fn: &Function{Name: name}}
	b.Label("entry")
	return b
}

// Label starts a new basic block. Starting a block while the previous one is
// empty discards the empty block (convenient for entry relabeling).
func (b *Builder) Label(label string) *Builder {
	if b.cur != nil && len(b.cur.Ins) == 0 {
		b.cur.Label = label
		return b
	}
	b.cur = &Block{Label: label}
	b.fn.Blocks = append(b.fn.Blocks, b.cur)
	return b
}

// I appends instructions to the current block.
func (b *Builder) I(ins ...isa.Instr) *Builder {
	for _, in := range ins {
		if last := len(b.cur.Ins) - 1; last >= 0 && b.cur.Ins[last].IsTerminator() && b.cur.Ins[last].Op != isa.JCC {
			b.err = fmt.Errorf("ir: %s: instruction %q after terminator in block %q",
				b.fn.Name, in.String(), b.cur.Label)
			return b
		}
		b.cur.Ins = append(b.cur.Ins, in)
	}
	return b
}

// NoInstrument marks the function as exempt from R^X instrumentation.
func (b *Builder) NoInstrument() *Builder {
	b.fn.NoInstrument = true
	return b
}

// NoDiversify marks the function as exempt from fine-grained KASLR.
func (b *Builder) NoDiversify() *Builder {
	b.fn.NoDiversify = true
	return b
}

// Func finalizes and validates the function.
func (b *Builder) Func() (*Function, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.fn.Validate(); err != nil {
		return nil, err
	}
	return b.fn, nil
}

// MustFunc finalizes the function and panics on malformed input. The
// mini-kernel sources are static, so construction errors are programmer
// errors.
func (b *Builder) MustFunc() *Function {
	f, err := b.Func()
	if err != nil {
		panic(err)
	}
	return f
}
