package ir

// FlagsLiveness answers, for any program point, whether %rflags is live —
// i.e. whether some instruction on some path will read the flags before
// they are next overwritten. This drives the O1 optimization: a range-check
// cmp inserted at a point where %rflags is dead needs no pushfq/popfq pair.
//
// %rflags is tracked as a single unit: if any instruction in the live
// region uses any status bit, the whole register is considered live (the
// paper's footnote 6 over-preserves the same way).
type FlagsLiveness struct {
	fn      *Function
	liveIn  []bool
	liveOut []bool
}

// ComputeFlagsLiveness runs the backward dataflow analysis to a fixpoint.
func ComputeFlagsLiveness(f *Function) *FlagsLiveness {
	n := len(f.Blocks)
	fl := &FlagsLiveness{fn: f, liveIn: make([]bool, n), liveOut: make([]bool, n)}
	// Conservative default for blocks whose control flow leaves the
	// function (ret, tail jump, indirect jmp): assume flags are dead
	// across call boundaries — the KX64 ABI, like SysV, does not preserve
	// %rflags across calls and returns.
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := false
			for _, s := range f.Successors(i) {
				out = out || fl.liveIn[s]
			}
			in := fl.scanBlock(i, 0, out)
			if out != fl.liveOut[i] || in != fl.liveIn[i] {
				fl.liveOut[i] = out
				fl.liveIn[i] = in
				changed = true
			}
		}
	}
	return fl
}

// scanBlock computes flags liveness immediately before instruction `from`
// of block i, given liveness at block exit.
func (fl *FlagsLiveness) scanBlock(i, from int, liveOut bool) bool {
	b := fl.fn.Blocks[i]
	for k := from; k < len(b.Ins); k++ {
		in := b.Ins[k]
		if in.ReadsFlags() {
			return true
		}
		if in.WritesFlags() {
			return false
		}
		if in.IsCall() {
			// Calls clobber flags (callee-clobbered in the ABI).
			return false
		}
	}
	return liveOut
}

// LiveBefore reports whether %rflags is live immediately before instruction
// index ii of block bi — i.e. whether an instrumentation cmp inserted there
// must be wrapped in pushfq/popfq.
func (fl *FlagsLiveness) LiveBefore(bi, ii int) bool {
	return fl.scanBlock(bi, ii, fl.liveOut[bi])
}

// Dominators computes the dominator relation of the function's CFG.
// dom[i] is the set (as a bitvector) of blocks that dominate block i.
// Blocks unreachable from the entry dominate nothing and are dominated by
// everything (standard convention; the passes never coalesce into them).
func Dominators(f *Function) [][]bool {
	n := len(f.Blocks)
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			dom[i][j] = true
		}
	}
	// Entry is dominated only by itself.
	for j := 1; j < n; j++ {
		dom[0][j] = false
	}
	preds := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, s := range f.Successors(i) {
			preds[s] = append(preds[s], i)
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			if len(preds[i]) == 0 {
				continue
			}
			// new = intersection of dom over preds, plus self.
			newDom := make([]bool, n)
			for j := range newDom {
				newDom[j] = true
			}
			for _, p := range preds[i] {
				for j := range newDom {
					newDom[j] = newDom[j] && dom[p][j]
				}
			}
			newDom[i] = true
			for j := range newDom {
				if newDom[j] != dom[i][j] {
					dom[i] = newDom
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// ReachableBetween reports whether block `to` is reachable from block
// `from` (following CFG edges, inclusive of from==to via a cycle). Used by
// the O3 coalescing pass to find the blocks "between" two range checks.
func ReachableBetween(f *Function, from, to int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(f.Blocks))
	stack := []int{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Successors(b) {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
