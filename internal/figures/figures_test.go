package figures

import (
	"strings"
	"testing"

	"repro/internal/kas"
)

func TestFigure2ContainsAllPhases(t *testing.T) {
	out := Figure2()
	for _, want := range []string{
		"(a) kR^X-SFI basic scheme",
		"(b) pushfq/popfq elimination",
		"(c) lea elimination",
		"(d) cmp/ja coalescing",
		"(e) kR^X-MPX conversion",
		"pushfq",
		"lea 0x154(%rsi), %r11",
		"cmp $(_krx_edata-0x154), %rsi",
		"bndcu 0x154(%rsi), %bnd0",
		"callq krx_handler",
		"wrmsr",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 missing %q", want)
		}
	}
	// Phase (d) must show exactly one remaining check: count the O3
	// section's cmp occurrences.
	dIdx := strings.Index(out, "(d)")
	eIdx := strings.Index(out, "(e)")
	if n := strings.Count(out[dIdx:eIdx], "_krx_edata"); n != 1 {
		t.Errorf("phase (d) shows %d checks, want 1", n)
	}
}

func TestFigure1BothLayouts(t *testing.T) {
	out := Figure1(kas.SectionSizes{})
	for _, want := range []string{"vanilla layout", "kR^X-KAS layout", "modules_text", "modules_data", ".krx_phantom", "physmap"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %q", want)
		}
	}
}

func TestFigure3BothVariants(t *testing.T) {
	out := Figure3()
	if !strings.Contains(out, "(a) decoy below") || !strings.Contains(out, "(b) decoy above") {
		t.Fatalf("Figure 3 must show both variants:\n%s", out)
	}
	if !strings.Contains(out, "push %r11") {
		t.Error("variant (a) prologue missing push %r11")
	}
	if !strings.Contains(out, "mov (%rsp), %rax") {
		t.Error("variant (b) prologue missing the swap sequence")
	}
}
