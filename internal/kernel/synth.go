package kernel

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// SynthCorpus generates n deterministic synthetic kernel functions. They
// pad the image into a realistically shaped .text: the diversification and
// instrumentation statistics (single-basic-block fraction, safe-read
// fraction, coalescing rate) and the gadget-scanning surface of §7.3 are
// measured over kernel-sized corpora, not five hand-written syscalls.
// About one in eight functions is a single basic block (the paper reports
// ~12% for Linux v3.19), and a few are gadget donors whose epilogues
// contain classic pop-reg/ret material.
func SynthCorpus(n int, seed int64) ([]*ir.Function, error) {
	rng := rand.New(rand.NewSource(seed))
	dataSyms := []string{"page_cache", "kbuf", "stat_scratch", "task_pool", "pgtable_arr", "exec_image"}
	var fns []*ir.Function

	// Gadget donors: hand-written-assembly-style register save/restore
	// routines whose tails encode pop-reg; ret sequences.
	donors := []struct {
		name string
		regs []isa.Reg
	}{
		{"irq_save_args", []isa.Reg{isa.RDI, isa.RSI}},
		{"ctx_save_ret", []isa.Reg{isa.RAX, isa.RDI}},
		{"trace_save_regs", []isa.Reg{isa.RSI, isa.RDX, isa.RDI}},
	}
	for _, d := range donors {
		b := ir.NewBuilder(d.name)
		for _, r := range d.regs {
			b.I(isa.Push(r))
		}
		b.I(isa.Nop())
		for i := len(d.regs) - 1; i >= 0; i-- {
			b.I(isa.Pop(d.regs[i]))
		}
		b.I(isa.Ret())
		f, err := b.Func()
		if err != nil {
			return nil, err
		}
		fns = append(fns, f)
	}

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("synth_%03d", i)
		var f *ir.Function
		var err error
		switch {
		case i%8 == 0 || i%16 == 9:
			f, err = synthLeaf(name, rng, dataSyms)
		case i%8 == 1:
			f, err = synthLoop(name, rng, dataSyms)
		case i%8 == 2:
			f, err = synthFlagsy(name, rng, dataSyms)
		case i%8 == 3:
			f, err = synthFramey(name, rng, dataSyms)
		default:
			f, err = synthBranchy(name, rng, dataSyms, fns)
		}
		if err != nil {
			return nil, err
		}
		fns = append(fns, f)
	}
	return fns, nil
}

// synthLeaf is a single-basic-block function (zero permutation entropy
// before phantom padding — the case §5.2.1 calls out).
func synthLeaf(name string, rng *rand.Rand, syms []string) (*ir.Function, error) {
	b := ir.NewBuilder(name)
	sym := syms[rng.Intn(len(syms))]
	if rng.Intn(2) == 0 {
		// Absolute global read: a "safe read" (address encoded in the
		// instruction) — kernels read statically-addressed globals this
		// way, giving the paper's ~4% safe-read fraction.
		b.I(
			isa.Load(isa.RAX, isa.MemAbs(sym, int32(rng.Intn(8))*8)),
			isa.MovSym(isa.R8, sym),
		)
	} else {
		b.I(
			isa.MovSym(isa.R8, sym),
			isa.Load(isa.RAX, isa.Mem(isa.R8, int32(rng.Intn(32))*8)),
		)
	}
	for j := 0; j < 1+rng.Intn(4); j++ {
		switch rng.Intn(3) {
		case 0:
			b.I(isa.AddRI(isa.RAX, int32(rng.Intn(128))))
		case 1:
			b.I(isa.ShlRI(isa.RAX, uint8(1+rng.Intn(4))))
		case 2:
			b.I(isa.Load(isa.RCX, isa.Mem(isa.R8, int32(rng.Intn(32))*8)))
		}
	}
	b.I(isa.Ret())
	return b.Func()
}

// synthLoop scans a table with an indexed loop (non-coalescible checks).
func synthLoop(name string, rng *rand.Rand, syms []string) (*ir.Function, error) {
	sym := syms[rng.Intn(len(syms))]
	bound := int32(4 + rng.Intn(28))
	return ir.NewBuilder(name).
		I(
			isa.MovSym(isa.R8, sym),
			isa.XorRR(isa.RCX, isa.RCX),
			isa.XorRR(isa.RAX, isa.RAX),
		).
		Label("loop").
		I(
			isa.CmpRI(isa.RCX, bound),
			isa.Jcc(isa.CondAE, "done"),
			isa.Instr{Op: isa.ADDrm, Dst: isa.RAX, M: isa.MemIdx(isa.R8, isa.RCX, 8, 0)},
			isa.Inc(isa.RCX),
			isa.Jmp("loop"),
		).
		Label("done").
		I(isa.Ret()).
		Func()
}

// synthBranchy is a multi-block function with same-base field reads
// (coalescible), stores, a diamond, and possibly a call to an
// earlier-defined function.
func synthBranchy(name string, rng *rand.Rand, syms []string, prev []*ir.Function) (*ir.Function, error) {
	sym := syms[rng.Intn(len(syms))]
	b := ir.NewBuilder(name)
	if rng.Intn(3) == 0 {
		// A statically-addressed global read (safe read).
		b.I(isa.Load(isa.RDX, isa.MemAbs(sym, int32(rng.Intn(4))*8)))
	}
	b.I(
		isa.MovSym(isa.R8, sym),
		isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
		isa.Load(isa.R10, isa.Mem(isa.R8, 8)),
		isa.CmpRR(isa.R9, isa.R10),
		isa.Jcc(isa.CondA, "hi"),
	).
		Label("lo").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.R8, 16)),
			isa.AddRI(isa.RAX, int32(rng.Intn(64))),
		)
	if len(prev) > 0 && rng.Intn(2) == 0 {
		callee := prev[rng.Intn(len(prev))]
		b.I(isa.Call(callee.Name))
	}
	b.I(isa.Jmp("out")).
		Label("hi").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.R8, 24)),
			isa.Store(isa.Mem(isa.R8, 32), isa.RAX),
		)
	extra := rng.Intn(3)
	for j := 0; j < extra; j++ {
		lbl := fmt.Sprintf("b%d", j)
		b.Label(lbl).I(
			isa.Load(isa.RCX, isa.Mem(isa.R8, int32(40+8*j))),
			isa.AddRR(isa.RAX, isa.RCX),
		)
	}
	return b.
		Label("out").
		I(isa.Ret()).
		Func()
}

// synthFlagsy interleaves comparisons with loads whose range checks land
// inside live %rflags regions, so the O1 optimization has pairs it cannot
// eliminate (the paper reports "up to 94%" elimination, not 100%).
func synthFlagsy(name string, rng *rand.Rand, syms []string) (*ir.Function, error) {
	sym := syms[rng.Intn(len(syms))]
	b := ir.NewBuilder(name).
		I(
			isa.MovSym(isa.R8, sym),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.CmpRI(isa.R9, int32(rng.Intn(64))),
			// This load's RC sits between the cmp and the jcc: %rflags
			// are live, pushfq/popfq must be preserved.
			isa.Load(isa.R10, isa.Mem(isa.R8, 8)),
			isa.Jcc(isa.CondG, "big"),
		).
		Label("small").
		I(isa.MovRR(isa.RAX, isa.R10), isa.Ret()).
		Label("big").
		I(
			isa.CmpRI(isa.R10, 7),
			isa.Load(isa.RCX, isa.Mem(isa.R8, 16)),
			isa.Jcc(isa.CondE, "small"),
		).
		Label("tail").
		I(isa.AddRR(isa.RAX, isa.RCX), isa.Ret())
	return b.Func()
}

// synthFramey uses a stack frame with %rsp-relative loads — the read class
// kR^X leaves uninstrumented and covers with the .krx_phantom guard
// (MaxStackDisp feeds the guard-sizing check).
func synthFramey(name string, rng *rand.Rand, syms []string) (*ir.Function, error) {
	sym := syms[rng.Intn(len(syms))]
	frame := int32(32 + 16*rng.Intn(4))
	return ir.NewBuilder(name).
		I(
			isa.SubRI(isa.RSP, frame),
			isa.MovSym(isa.R8, sym),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.Store(isa.Mem(isa.RSP, 0), isa.R9),
			isa.Store(isa.Mem(isa.RSP, 8), isa.R8),
			// %rsp-relative reads: no range checks, guard-covered.
			isa.Load(isa.RAX, isa.Mem(isa.RSP, 0)),
			isa.Load(isa.RCX, isa.Mem(isa.RSP, frame-8)),
			isa.AddRR(isa.RAX, isa.RCX),
			isa.AddRI(isa.RSP, frame),
			isa.Ret(),
		).
		Func()
}
