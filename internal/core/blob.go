package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/diversify"
	"repro/internal/ir"
	"repro/internal/link"
	"repro/internal/sfi"
)

// BuildResult store-blob layout. The image reuses the KRXIMG01 file format
// (the same bytes `krxbench -emit` writes), prefixed with its length so
// the gob trailer can follow in the same blob:
//
//	u64 image length
//	KRXIMG01 image bytes
//	gob{SFIStats, DivStats, Prog}
//
// Prog is the post-pass IR and must travel with the image: the audit layer
// resolves function bodies through Build.Prog during fuzz execution, so a
// decoded result without it would boot but crash the first audited Exec.
// Config is NOT serialized — runtime-only knobs (watchdog budget, fault
// plan) belong to the requesting caller, and build-affecting fields are
// already the key.

// buildTrailer is the gob-encoded remainder of a BuildResult blob.
type buildTrailer struct {
	SFIStats sfi.Stats
	DivStats diversify.Stats
	Prog     *ir.Program
}

// EncodeBuildResult serializes res for the artifact store.
func EncodeBuildResult(res *BuildResult) ([]byte, error) {
	var img bytes.Buffer
	if err := res.Image.WriteImage(&img); err != nil {
		return nil, fmt.Errorf("core: encode image: %w", err)
	}
	var out bytes.Buffer
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(img.Len()))
	out.Write(n[:])
	out.Write(img.Bytes())
	if err := gob.NewEncoder(&out).Encode(buildTrailer{
		SFIStats: res.SFIStats,
		DivStats: res.DivStats,
		Prog:     res.Prog,
	}); err != nil {
		return nil, fmt.Errorf("core: encode trailer: %w", err)
	}
	return out.Bytes(), nil
}

// DecodeBuildResult reverses EncodeBuildResult. The returned result's
// Config is zero — the caller owns it (see the layout note above).
func DecodeBuildResult(data []byte) (*BuildResult, error) {
	r := bytes.NewReader(data)
	var n [8]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("core: decode image length: %w", err)
	}
	imgLen := binary.LittleEndian.Uint64(n[:])
	if imgLen > uint64(r.Len()) {
		return nil, fmt.Errorf("core: image length %d exceeds blob remainder %d", imgLen, r.Len())
	}
	img, err := link.ReadImage(io.LimitReader(r, int64(imgLen)))
	if err != nil {
		return nil, fmt.Errorf("core: decode image: %w", err)
	}
	var tr buildTrailer
	if err := gob.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("core: decode trailer: %w", err)
	}
	if tr.Prog == nil {
		return nil, fmt.Errorf("core: blob trailer missing program IR")
	}
	return &BuildResult{
		Prog:     tr.Prog,
		Image:    img,
		SFIStats: tr.SFIStats,
		DivStats: tr.DivStats,
	}, nil
}
