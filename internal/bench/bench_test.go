package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

func TestTable1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweep")
	}
	tbl, err := RunTable1(3)
	if err != nil {
		t.Fatal(err)
	}
	col := func(name string) int {
		for i, c := range tbl.Configs {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing config column %q", name)
		return -1
	}
	row := func(name string) int {
		for i, r := range tbl.RowNames {
			if r == name {
				return i
			}
		}
		t.Fatalf("missing row %q", name)
		return -1
	}
	o0, o1, o2, o3 := col("SFI(-O0)"), col("SFI(-O1)"), col("SFI(-O2)"), col("SFI")
	mpx, d, x := col("MPX"), col("D"), col("X")

	// Shape claim 1: the optimization ladder is monotone on every row.
	for ri, name := range tbl.RowNames {
		v := tbl.Overhead[ri]
		if !(v[o0] >= v[o1] && v[o1] >= v[o2]-0.5 && v[o2] >= v[o3]-0.5) {
			t.Errorf("%s: O0..O3 not monotone: %.1f %.1f %.1f %.1f", name, v[o0], v[o1], v[o2], v[o3])
		}
		// Shape claim 2: MPX (almost) eliminates the SFI overhead.
		if v[mpx] > v[o3]*0.75+0.5 {
			t.Errorf("%s: MPX (%.2f%%) not well below SFI-O3 (%.2f%%)", name, v[mpx], v[o3])
		}
		// Shape claim 3: overheads are non-negative (within noise).
		for ci, ov := range v {
			if ov < -1.0 {
				t.Errorf("%s/%s: negative overhead %.2f%%", name, tbl.Configs[ci], ov)
			}
		}
	}

	// Shape claim 4: the O0 scheme is dramatically expensive (order of
	// 100%+ on syscall latency, like the paper's 127%).
	if v := tbl.Overhead[row("syscall()")][o0]; v < 50 {
		t.Errorf("SFI(-O0) null-syscall overhead %.1f%% suspiciously low", v)
	}
	// Shape claim 5: select(100 fds) benefits more from coalescing than
	// select(10) — relative overhead must be lower.
	if tbl.Overhead[row("select(100 TCP fds)")][o3] > tbl.Overhead[row("select(10 fds)")][o3] {
		t.Error("coalescing should favour the large select")
	}
	// Shape claim 6: decoys are cheaper than encryption on latency average
	// (pure diversification columns).
	var dSum, xSum float64
	for ri := range tbl.RowNames {
		dSum += tbl.Overhead[ri][d]
		xSum += tbl.Overhead[ri][x]
	}
	if dSum >= xSum {
		t.Errorf("decoys (%.1f) should be cheaper than encryption (%.1f) on this suite", dSum, xSum)
	}
	// Shape claim 7: bandwidth rows suffer less than latency rows under
	// full SFI protection (rep-string amortization).
	var latAvg, bwAvg float64
	var nl, nb int
	for ri, kind := range tbl.RowKinds {
		if kind == Bandwidth {
			bwAvg += tbl.Overhead[ri][o3]
			nb++
		} else {
			latAvg += tbl.Overhead[ri][o3]
			nl++
		}
	}
	if bwAvg/float64(nb) > latAvg/float64(nl) {
		t.Errorf("bandwidth overhead (%.2f%%) should undercut latency overhead (%.2f%%)",
			bwAvg/float64(nb), latAvg/float64(nl))
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweep")
	}
	tbl, err := RunTable2(3)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(name string) int {
		for i, r := range tbl.RowNames {
			if r == name {
				return i
			}
		}
		t.Fatalf("missing workload %q", name)
		return -1
	}
	// PostMark is the worst row in every column (≈83% kernel time).
	pm := idx("PostMark")
	for ci := range tbl.Configs {
		for ri, name := range tbl.RowNames {
			if tbl.Overhead[ri][ci] > tbl.Overhead[pm][ci]+0.01 {
				t.Errorf("%s (%s) exceeds PostMark: %.2f%% > %.2f%%",
					name, tbl.Configs[ci], tbl.Overhead[ri][ci], tbl.Overhead[pm][ci])
			}
		}
	}
	// CPU-bound workloads are ~0 everywhere.
	for _, name := range []string{"GnuPG", "OpenSSL", "PyBench", "PHPBench"} {
		ri := idx(name)
		for ci := range tbl.Configs {
			if tbl.Overhead[ri][ci] > 0.5 {
				t.Errorf("%s/%s: CPU-bound workload overhead %.2f%%", name, tbl.Configs[ci], tbl.Overhead[ri][ci])
			}
		}
	}
	// Full-protection averages stay in single digits (paper: 2.3%–4.1%).
	for ci, cfg := range tbl.Configs {
		var sum float64
		for ri := range tbl.RowNames {
			sum += tbl.Overhead[ri][ci]
		}
		avg := sum / float64(len(tbl.RowNames))
		if avg < 0 || avg > 10 {
			t.Errorf("%s: average overhead %.2f%% outside the plausible band", cfg, avg)
		}
	}
	// MPX combos beat their SFI counterparts.
	cols := map[string]int{}
	for i, c := range tbl.Configs {
		cols[c] = i
	}
	for _, pair := range [][2]string{{"MPX+D", "SFI+D"}, {"MPX+X", "SFI+X"}} {
		var m, s float64
		for ri := range tbl.RowNames {
			m += tbl.Overhead[ri][cols[pair[0]]]
			s += tbl.Overhead[ri][cols[pair[1]]]
		}
		if m >= s {
			t.Errorf("%s (%.1f) should beat %s (%.1f)", pair[0], m, pair[1], s)
		}
	}
}

func TestFormatRendersTable(t *testing.T) {
	tbl := &Table{
		Title:    "test",
		RowNames: []string{"a", "b"},
		RowKinds: []OpKind{Latency, Bandwidth},
		Configs:  []string{"SFI", "MPX"},
		Overhead: [][]float64{{1.5, 0.01}, {-0.02, 25.0}},
	}
	out := tbl.Format()
	for _, want := range []string{"SFI", "MPX", "1.50%", "~0%", "25.00%", "bandwidth", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestStatsReportClaims(t *testing.T) {
	// The §7.2 text claims, measured over the corpus.
	k, err := kernel.Boot(core.Config{XOM: core.XOMSFI, SFILevel: sfi.O1, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := k.Build.SFIStats
	// O1: "can eliminate up to 94% of the original pushfq-popfq pairs".
	elim := float64(s.PushfqEliminated) / float64(s.PushfqPairs+s.PushfqEliminated)
	if elim < 0.5 {
		t.Errorf("O1 pushfq elimination rate %.2f too low", elim)
	}
	// "Safe reads account for 4% of all memory reads" — allow a band.
	safe := float64(s.SafeReads) / float64(s.ReadsTotal)
	if safe < 0.01 || safe > 0.15 {
		t.Errorf("safe-read fraction %.3f outside band", safe)
	}

	k3, err := kernel.Boot(core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s3 := k3.Build.SFIStats
	// O2: "95% of the RCs can be optimized this way" (lea-eliminated).
	lea := float64(s3.LeaEliminated) / float64(s3.LeaEliminated+s3.LeaForm)
	if lea < 0.6 {
		t.Errorf("O2 lea elimination rate %.2f too low", lea)
	}
	// O3: "about one out of every two RCs can be eliminated" — band.
	coal := float64(s3.RCCoalesced) / float64(s3.RCCandidates)
	if coal < 0.15 || coal > 0.8 {
		t.Errorf("O3 coalescing rate %.2f outside band", coal)
	}
	rep := StatsReport(k3)
	for _, want := range []string{"range checks", "lea-eliminated", "safe"} {
		if !strings.Contains(rep, want) {
			t.Errorf("stats report missing %q:\n%s", want, rep)
		}
	}
	repD := StatsReport(k)
	if !strings.Contains(repD, "entropy floor") {
		t.Errorf("stats report missing diversification section:\n%s", repD)
	}
}

func TestMicroOpsAllRunEverywhere(t *testing.T) {
	// Every op must run cleanly on vanilla and one full-protection kernel.
	for _, cfg := range []core.Config{core.Vanilla,
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 6}} {
		if _, err := measureOps(cfg, MicroOps(), 2); err != nil {
			t.Errorf("%s: %v", cfg.Name(), err)
		}
	}
}

func TestWorkloadsAllRunEverywhere(t *testing.T) {
	k, err := kernel.Boot(core.Config{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range Workloads() {
		if _, err := w.Txn(k); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.UserShare <= 0 || w.UserShare >= 1 {
			t.Errorf("%s: user share %.3f out of range", w.Name, w.UserShare)
		}
	}
}

func TestPaperComparisonAndShapeAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweep")
	}
	t1, err := RunTable1(3)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparison(t1, nil, true)
	if !strings.Contains(out, "/") || !strings.Contains(out, "syscall()") {
		t.Fatalf("comparison rendering broken:\n%s", out)
	}
	// Rank agreement with the paper's Table 1 per column: the shape claim.
	agree := ShapeAgreement(t1, nil, true)
	for _, cfg := range []string{"SFI(-O0)", "SFI", "MPX"} {
		if a, ok := agree[cfg]; !ok || a < 0.5 {
			t.Errorf("rank agreement with the paper for %s = %.2f (want >= 0.5)", cfg, a)
		}
	}

	t2, err := RunTable2(3)
	if err != nil {
		t.Fatal(err)
	}
	agree2 := ShapeAgreement(t2, PaperTable2, false)
	for cfg, a := range agree2 {
		if a < 0.6 {
			t.Errorf("Table 2 rank agreement for %s = %.2f (want >= 0.6)", cfg, a)
		}
	}
	out2 := FormatComparison(t2, PaperTable2, false)
	if !strings.Contains(out2, "PostMark") {
		t.Fatalf("table 2 comparison broken:\n%s", out2)
	}
}

func TestProfileDecomposition(t *testing.T) {
	vanilla, err := RunProfile(core.Vanilla)
	if err != nil {
		t.Fatal(err)
	}
	if vanilla.RangeCheck != 0 || vanilla.RAProt != 0 {
		t.Fatalf("vanilla kernel must have zero protection cycles: %+v", vanilla)
	}
	if vanilla.TotalCycles == 0 || len(vanilla.ByFunc) < 10 {
		t.Fatalf("profile empty: %+v", vanilla)
	}

	sfiProf, err := RunProfile(core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if sfiProf.RangeCheck == 0 {
		t.Fatal("SFI profile must attribute range-check cycles")
	}
	// The attributed overhead must roughly match the measured overhead:
	// total_sfi - rc ≈ total_vanilla (within a band — connector jmps and
	// entry-path differences add noise).
	ratio := float64(sfiProf.TotalCycles-sfiProf.RangeCheck) / float64(vanilla.TotalCycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("rc-subtracted cycles / vanilla = %.3f, want ~1.0", ratio)
	}

	full, err := RunProfile(core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if full.RAProt == 0 {
		t.Fatal("X profile must attribute ra-protection cycles")
	}
	out := full.Format(5)
	for _, want := range []string{"range checks", "ra protection", "hottest"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile formatting missing %q:\n%s", want, out)
		}
	}

	mpx, err := RunProfile(core.Config{XOM: core.XOMMPX, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if mpx.RangeCheck == 0 || mpx.RangeCheck >= sfiProf.RangeCheck {
		t.Errorf("MPX check cycles (%d) must be positive and below SFI's (%d)",
			mpx.RangeCheck, sfiProf.RangeCheck)
	}
}

// TestSweepBuildsEachConfigOnce is the build-cache acceptance property for
// the multi-config sweeps: running both tables back to back must compile
// each distinct configuration exactly once — the second table's columns
// (a subset of the presets) are all cache hits.
func TestSweepBuildsEachConfigOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweep")
	}
	defer kernel.SetBuildCache(kernel.SetBuildCache(core.NewImageCache(nil)))
	if _, err := RunTable1(1); err != nil {
		t.Fatal(err)
	}
	if _, err := RunTable2(1); err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{core.Vanilla.BuildKey(): true}
	for _, cfg := range Table1Configs() {
		distinct[cfg.BuildKey()] = true
	}
	for _, cfg := range Table2Configs() {
		distinct[cfg.BuildKey()] = true
	}
	if got := kernel.BuildCache().Stats().Builds; got != uint64(len(distinct)) {
		t.Fatalf("sweeps ran %d builds for %d distinct configs", got, len(distinct))
	}
	if kernel.BuildCache().Stats().Hits == 0 {
		t.Fatal("the second sweep produced no cache hits")
	}
}
