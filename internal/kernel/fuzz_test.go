package kernel

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/diversify"
	"repro/internal/sfi"
)

// fuzzMachine is the shared booted kernel for FuzzSyscall. Booting per input
// would dominate runtime; instead one machine boots lazily and every input
// runs from the same snapshot under a mutex (fuzz workers in other processes
// boot their own).
var fuzzMachine struct {
	once sync.Once
	mu   sync.Mutex
	k    *Kernel
	snap *Snapshot
	err  error
}

func fuzzKernel() (*Kernel, *Snapshot, error) {
	fuzzMachine.once.Do(func() {
		k, err := Boot(core.Config{
			XOM: core.XOMSFI, SFILevel: sfi.O3,
			Diversify: true, RAProt: diversify.RAEncrypt,
			Seed: 7,
		})
		if err != nil {
			fuzzMachine.err = err
			return
		}
		if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
			fuzzMachine.err = err
			return
		}
		fuzzMachine.k = k
		fuzzMachine.snap = k.Snapshot()
	})
	return fuzzMachine.k, fuzzMachine.snap, fuzzMachine.err
}

// callLen is the wire size of one fuzzed call: nr + 3 args, little-endian.
const callLen = 32

func seedCalls(calls ...[4]uint64) []byte {
	var b []byte
	for _, c := range calls {
		for _, v := range c {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
	}
	return b
}

// FuzzSyscall drives raw syscall sequences against the hardened kernel. The
// invariant under test is the harness contract, not kernel semantics: every
// input must come back as a structured SyscallResult — traps, kR^X
// violations, and watchdog exhaustion included — with no Go panic escaping
// and no run exceeding the instruction budget.
func FuzzSyscall(f *testing.F) {
	f.Add(seedCalls([4]uint64{SysNull, 0, 0, 0}))
	f.Add(seedCalls(
		[4]uint64{SysOpen, UserBuf, 0, 0},
		[4]uint64{SysWrite, 3, UserBuf + 512, 64},
		[4]uint64{SysRead, 3, UserBuf + 1024, 64},
		[4]uint64{SysClose, 3, 0, 0},
	))
	f.Add(seedCalls([4]uint64{SysLeak, 0xffffffff80000000, 0, 0}))
	f.Add(seedCalls([4]uint64{SysStackSmash, UserBuf, 4096, 0}))
	f.Add(seedCalls(
		[4]uint64{SysMmap, 8, 0, 0},
		[4]uint64{SysMunmap, 0, 8, 0},
	))
	f.Add(seedCalls([4]uint64{NumSyscalls + 17, ^uint64(0), ^uint64(0), ^uint64(0)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		k, snap, err := fuzzKernel()
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		fuzzMachine.mu.Lock()
		defer fuzzMachine.mu.Unlock()
		if err := k.Restore(snap); err != nil {
			t.Fatalf("restore: %v", err)
		}
		for off := 0; off+callLen <= len(data) && off < 8*callLen; off += callLen {
			nr := binary.LittleEndian.Uint64(data[off:])
			a := binary.LittleEndian.Uint64(data[off+8:])
			b := binary.LittleEndian.Uint64(data[off+16:])
			c := binary.LittleEndian.Uint64(data[off+24:])
			r := k.Syscall(nr, a, b, c)
			if r == nil || r.Run == nil {
				t.Fatalf("syscall %d: nil result", nr)
			}
			if r.Run.Instrs > k.WatchdogBudget() {
				t.Fatalf("syscall %d: ran %d instrs past the %d budget", nr, r.Run.Instrs, k.WatchdogBudget())
			}
			if r.Failed {
				break
			}
		}
	})
}

// TestSnapshotRestore proves the fuzzing loop's isolation property: state
// mutated by one iteration (files written, memory mapped, faults taken) does
// not leak into the next.
func TestSnapshotRestore(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3})
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		t.Fatal(err)
	}
	snap := k.Snapshot()
	firstFD := ^uint64(0)

	for round := 0; round < 3; round++ {
		fd := sysOK(t, k, SysOpen, UserBuf)
		if round == 0 {
			firstFD = fd
		} else if fd != firstFD {
			t.Fatalf("round %d: fd = %d, want %d (restore leaked fd-table state)", round, fd, firstFD)
		}
		if err := k.WriteUser(512, []byte("dirty")); err != nil {
			t.Fatal(err)
		}
		sysOK(t, k, SysMmap, 4)
		// Crash the machine too: the restore must recover from a trap.
		if r := k.Syscall(SysRead, fd, ^uint64(0), 64); !r.Failed {
			t.Fatalf("round %d: wild read unexpectedly succeeded", round)
		}
		if err := k.Restore(snap); err != nil {
			t.Fatalf("round %d: restore: %v", round, err)
		}
		back, err := k.ReadUser(512, 5)
		if err != nil {
			t.Fatal(err)
		}
		if string(back) == "dirty" {
			t.Fatalf("round %d: user memory not rolled back", round)
		}
	}
}

// TestWatchdogBudget proves a runaway kernel loop surfaces as a structured
// BudgetError instead of hanging.
func TestWatchdogBudget(t *testing.T) {
	// A budget below even the syscall entry/dispatch sequence: every call
	// must stop at the limit and report it, never hang or truncate silently.
	k := boot(t, core.Config{WatchdogBudget: 30})
	r := k.Syscall(SysGetdents, UserBuf, 64)
	if !r.Failed {
		t.Fatal("expected the watchdog to fire")
	}
	be, ok := r.Err.(*cpu.BudgetError)
	if !ok {
		t.Fatalf("Err = %v (%T), want *cpu.BudgetError", r.Err, r.Err)
	}
	if be.Budget != 30 {
		t.Fatalf("BudgetError.Budget = %d, want 30", be.Budget)
	}
	if r.Run.Instrs > 30 {
		t.Fatalf("ran %d instrs past the budget", r.Run.Instrs)
	}
}

// TestBootDeterminism proves two boots under the same seed produce identical
// xkey assignments — the property seeded fault replay depends on.
func TestBootDeterminism(t *testing.T) {
	cfg := core.Config{
		XOM: core.XOMSFI, SFILevel: sfi.O3,
		Diversify: true, RAProt: diversify.RAEncrypt,
		Seed: 99,
	}
	k1 := boot(t, cfg)
	k2 := boot(t, cfg)
	if len(k1.Keys) == 0 {
		t.Fatal("no xkeys under RAEncrypt")
	}
	for sym, v := range k1.Keys {
		if k2.Keys[sym] != v {
			t.Fatalf("key %s differs across same-seed boots: %#x vs %#x", sym, v, k2.Keys[sym])
		}
	}
}
