package kernel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/diversify"
	"repro/internal/sfi"
)

func boot(t *testing.T, cfg core.Config) *Kernel {
	t.Helper()
	k, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func sysOK(t *testing.T, k *Kernel, nr uint64, args ...uint64) uint64 {
	t.Helper()
	r := k.Syscall(nr, args...)
	if r.Failed {
		t.Fatalf("syscall %d failed: %v trap=%v haltrip=%#x", nr, r.Run.Reason, r.Run.Trap, r.Run.HaltRIP)
	}
	return r.Ret
}

// exerciseSyscalls drives the full syscall surface and checks semantics.
func exerciseSyscalls(t *testing.T, k *Kernel) {
	t.Helper()
	if got := sysOK(t, k, SysNull); got != 0 {
		t.Errorf("null: %d", got)
	}
	if got := sysOK(t, k, SysGetpid); got != 1 {
		t.Errorf("getpid: %d", got)
	}

	// open/read/write/fstat/close round trip.
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		t.Fatal(err)
	}
	fd := sysOK(t, k, SysOpen, UserBuf)
	if int64(fd) < 0 {
		t.Fatalf("open: %d", int64(fd))
	}
	// Write 64 bytes from the user buffer into the file.
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := k.WriteUser(512, payload); err != nil {
		t.Fatal(err)
	}
	if got := sysOK(t, k, SysWrite, fd, UserBuf+512, 64); got != 64 {
		t.Errorf("write: %d", got)
	}
	// Reset pos via a fresh fd to read back.
	fd2 := sysOK(t, k, SysOpen, UserBuf)
	if got := sysOK(t, k, SysRead, fd2, UserBuf+1024, 64); got != 64 {
		t.Errorf("read: %d", got)
	}
	back, err := k.ReadUser(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != payload[i] {
			t.Fatalf("read-back mismatch at %d: %d != %d", i, back[i], payload[i])
		}
	}
	if got := sysOK(t, k, SysFstat, fd2, UserBuf+2048); got != 0 {
		t.Errorf("fstat: %d", got)
	}
	if got := sysOK(t, k, SysSelect, 10); got < 2 {
		t.Errorf("select: %d ready, want >= 2 (two open fds)", got)
	}
	if got := sysOK(t, k, SysClose, fd); got != 0 {
		t.Errorf("close: %d", got)
	}
	if got := sysOK(t, k, SysClose, fd); int64(got) != -1 {
		t.Errorf("double close: %d", int64(got))
	}
	if got := sysOK(t, k, SysClose, 9999); int64(got) != -1 {
		t.Errorf("close of bogus fd: %d", int64(got))
	}

	// mmap/munmap.
	first := sysOK(t, k, SysMmap, 4)
	if int64(first) < 0 {
		t.Fatalf("mmap: %d", int64(first))
	}
	if got := sysOK(t, k, SysMunmap, first, 4); got != 0 {
		t.Errorf("munmap: %d", got)
	}

	// fork/execve/exit.
	child := sysOK(t, k, SysFork)
	if child < 2 {
		t.Errorf("fork pid: %d", child)
	}
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		t.Fatal(err)
	}
	if got := sysOK(t, k, SysExecve, UserBuf); got != 0 {
		t.Errorf("execve: %d", got)
	}
	// Signals.
	if got := sysOK(t, k, SysSigaction, 5, 0xdead0000); got != 0 {
		t.Errorf("sigaction old: %d", got)
	}
	if got := sysOK(t, k, SysSigaction, 5, 0xbeef0000); got != 0xdead0000 {
		t.Errorf("sigaction returns old handler: %#x", got)
	}
	if got := sysOK(t, k, SysKill, 5); got != 0 {
		t.Errorf("kill: %d", got)
	}
	if got := sysOK(t, k, SysExit); got != 0 {
		t.Errorf("exit: %d", got)
	}

	// Pipes and sockets.
	msg := make([]byte, 128)
	for i := range msg {
		msg[i] = byte(255 - i)
	}
	if err := k.WriteUser(4096, msg); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]uint64{
		{SysPipeWrite, SysPipeRead},
		{SysUnixWrite, SysUnixRead},
		{SysTCPWrite, SysTCPRead},
		{SysUDPWrite, SysUDPRead},
	} {
		if got := sysOK(t, k, pair[0], UserBuf+4096, 128); got != 128 {
			t.Fatalf("ring write %d: %d", pair[0], got)
		}
		if got := sysOK(t, k, pair[1], UserBuf+8192, 128); got != 128 {
			t.Fatalf("ring read %d: %d", pair[1], got)
		}
		out, err := k.ReadUser(8192, 128)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != msg[i] {
				t.Fatalf("ring %d data mismatch at %d", pair[0], i)
			}
		}
	}
}

func TestVanillaKernelSyscalls(t *testing.T) {
	exerciseSyscalls(t, boot(t, core.Vanilla))
}

func TestProtectedKernelsPreserveSemantics(t *testing.T) {
	for _, cfg := range []core.Config{
		{XOM: core.XOMSFI, SFILevel: sfi.O0, Seed: 11},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 12},
		{XOM: core.XOMMPX, Seed: 13},
		{XOM: core.XOMEPT, Seed: 13},
		{Diversify: true, RAProt: diversify.RAEncrypt, Seed: 14},
		{Diversify: true, RAProt: diversify.RADecoy, Seed: 15},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 16},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 17},
		{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 18},
		{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RADecoy, Seed: 19},
	} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			exerciseSyscalls(t, boot(t, cfg))
		})
	}
}

func TestFaultRoundTrip(t *testing.T) {
	for _, cfg := range []core.Config{
		core.Vanilla,
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 3},
	} {
		k := boot(t, cfg)
		// Fault on an unmapped *user* address: handled, resumes, spins.
		res := k.TriggerFault(0x00000000deadb000)
		if res.Reason != cpu.StopIret {
			t.Fatalf("%s: fault round trip: %v trap=%v", cfg.Name(), res.Reason, res.Trap)
		}
		cnt, err := k.Space.AS.Peek(k.Sym("fault_count"), 8)
		if err != nil || cnt[0] == 0 {
			t.Fatalf("%s: fault_count not bumped: %v %v", cfg.Name(), cnt, err)
		}
	}
}

func TestLeakReadsDataEverywhere(t *testing.T) {
	// The arbitrary-read vulnerability can always leak the data region —
	// kR^X does not (and cannot) prevent data leaks, only code leaks.
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 7})
	credAddr := k.Sym("cred")
	r := k.Syscall(SysLeak, credAddr)
	if r.Failed {
		t.Fatalf("leak of data must succeed: %v", r.Run.Trap)
	}
	if r.Ret != 1000 {
		t.Fatalf("leaked uid = %d, want 1000", r.Ret)
	}
}

func TestLeakOfCodeBlockedBySFI(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 8})
	r := k.Syscall(SysLeak, k.Sym("_text")+64)
	if !r.Failed || !k.Violated(r) {
		t.Fatalf("code leak must trip the SFI range check: failed=%v reason=%v", r.Failed, r.Run.Reason)
	}
}

func TestLeakOfCodeBlockedByMPX(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMMPX, Seed: 9})
	r := k.Syscall(SysLeak, k.Sym("_text")+64)
	if !r.Failed || !k.Violated(r) {
		t.Fatalf("code leak must raise #BR: failed=%v reason=%v trap=%v", r.Failed, r.Run.Reason, r.Run.Trap)
	}
	if r.Run.Trap == nil || r.Run.Trap.Kind != cpu.TrapBoundRange {
		t.Fatalf("expected #BR, got %v", r.Run.Trap)
	}
}

func TestLeakOfCodeBlockedByEPT(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMEPT, Seed: 10})
	r := k.Syscall(SysLeak, k.Sym("_text")+64)
	if !r.Failed || !k.Violated(r) {
		t.Fatalf("code leak must fault under EPT: %v %v", r.Run.Reason, r.Run.Trap)
	}
}

func TestLeakOfCodeAllowedOnVanilla(t *testing.T) {
	// x86 semantics: without kR^X, executable kernel memory is readable.
	k := boot(t, core.Vanilla)
	r := k.Syscall(SysLeak, k.Sym("_text"))
	if r.Failed {
		t.Fatalf("vanilla kernel must allow code reads: %v", r.Run.Trap)
	}
	if r.Ret == 0 {
		t.Fatal("leaked code bytes are empty")
	}
}

func TestXkeysUnreadableButUsable(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 21})
	// The xkey region lies above _krx_edata: the leak primitive cannot
	// read it...
	var keyAddr uint64
	for _, a := range k.Img.KeyAddrs {
		keyAddr = a
		break
	}
	r := k.Syscall(SysLeak, keyAddr)
	if !k.Violated(r) {
		t.Fatalf("xkey leak must be blocked, got ret=%#x reason=%v", r.Ret, r.Run.Reason)
	}
	// ...yet the prologues' %rip-relative safe reads work fine (proven by
	// every other syscall succeeding).
	k2 := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 21})
	if got := sysOK(t, k2, SysGetpid); got != 1 {
		t.Fatalf("getpid: %d", got)
	}
}

func TestFtraceCloneReadsCodeLegitimately(t *testing.T) {
	// The §6 clones let tracing subsystems read code under full kR^X.
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 22})
	r := k.Syscall(SysFtracePeek, k.Sym("_text")+16)
	if r.Failed {
		t.Fatalf("ftrace peek must succeed via the clone: %v %v", r.Run.Reason, r.Run.Trap)
	}
}

func TestPhysmapSynonymClosed(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 23})
	syn, ok := k.Space.SynonymAddr(k.Sym("_text"))
	if !ok {
		t.Fatal("no synonym mapping recorded")
	}
	// Reading kernel code through its physmap alias must fault (the alias
	// is unmapped at boot) — otherwise R^X would be bypassable without
	// ever touching the code region.
	r := k.Syscall(SysLeak, syn)
	if !r.Failed {
		t.Fatalf("physmap code synonym still readable: %#x", r.Ret)
	}
	// Vanilla keeps the alias (and the weakness).
	kv := boot(t, core.Vanilla)
	synv, _ := kv.Space.SynonymAddr(kv.Sym("_text"))
	if r := kv.Syscall(SysLeak, synv); r.Failed {
		t.Fatal("vanilla physmap synonym should be readable")
	}
}

func TestGuardSectionAbsorbsStackReads(t *testing.T) {
	// The guard must exceed every uninstrumented %rsp displacement.
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 24})
	if int64(k.Build.SFIStats.MaxStackDisp) >= int64(k.Img.Layout.GuardSize) {
		t.Fatalf("guard (%d) smaller than max stack displacement (%d)",
			k.Img.Layout.GuardSize, k.Build.SFIStats.MaxStackDisp)
	}
}

func TestKernelStackIsReadableData(t *testing.T) {
	// Kernel stacks live in the physmap (readable) region — the §5.2.2
	// premise that makes return addresses harvestable.
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 25})
	sysOK(t, k, SysNull)
	r := k.Syscall(SysLeak, k.CPU.KernelStackTop-8)
	if r.Failed {
		t.Fatalf("kernel stack leak must succeed (it is data): %v", r.Run.Trap)
	}
}

func TestBogusSyscallNumber(t *testing.T) {
	k := boot(t, core.Vanilla)
	r := k.Syscall(NumSyscalls + 5)
	if r.Failed || int64(r.Ret) != -1 {
		t.Fatalf("bogus syscall: failed=%v ret=%d", r.Failed, int64(r.Ret))
	}
}

func TestStatsShape(t *testing.T) {
	// The corpus must be realistically shaped: some safe reads, plenty of
	// instrumentable reads, and roughly an eighth of the synthetic corpus
	// single-block.
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 26})
	st := k.Build.SFIStats
	if st.ReadsTotal < 100 {
		t.Errorf("suspiciously few reads: %d", st.ReadsTotal)
	}
	if st.RCCoalesced == 0 {
		t.Error("coalescing never fired on the corpus")
	}
	if st.SafeReads == 0 {
		t.Error("no safe reads in the corpus")
	}
	ds := k.Build.DivStats
	if ds.SingleBlockFuncs == 0 {
		t.Error("no single-block functions in the corpus")
	}
	frac := float64(ds.SingleBlockFuncs) / float64(ds.Funcs)
	if frac < 0.05 || frac > 0.30 {
		t.Errorf("single-block fraction %.2f outside the plausible band", frac)
	}
	if ds.MinEntropyBits < 30 {
		t.Errorf("entropy floor %.1f < 30 bits", ds.MinEntropyBits)
	}
}

func TestBootIsDeterministicPerSeed(t *testing.T) {
	k1 := boot(t, core.Config{Diversify: true, Seed: 42})
	k2 := boot(t, core.Config{Diversify: true, Seed: 42})
	k3 := boot(t, core.Config{Diversify: true, Seed: 43})
	a1 := k1.Sym("sys_leak")
	if a2 := k2.Sym("sys_leak"); a1 != a2 {
		t.Error("same seed must give the same layout")
	}
	if a3 := k3.Sym("sys_leak"); a1 == a3 {
		t.Error("different seeds should move functions (w.h.p.)")
	}
}

func TestHideMBaseline(t *testing.T) {
	// The split-TLB baseline (§2): code reads silently return the shadow
	// (zeros) instead of faulting, while execution and data are untouched.
	k := boot(t, core.Config{XOM: core.XOMHideM, Seed: 27})
	exerciseSyscalls(t, k)
	r := k.Syscall(SysLeak, k.Sym("_text")+64)
	if r.Failed {
		t.Fatalf("HideM reads do not fault: %v", r.Run.Trap)
	}
	if r.Ret != 0 {
		t.Fatalf("HideM must serve the zero shadow, got %#x", r.Ret)
	}
	// Data region reads still return real contents.
	if r := k.Syscall(SysLeak, k.Sym("cred")); r.Failed || r.Ret != 1000 {
		t.Fatalf("HideM data read broken: %v %d", r.Failed, r.Ret)
	}
}

func TestExtendedSyscalls(t *testing.T) {
	for _, cfg := range []core.Config{
		core.Vanilla,
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 28},
	} {
		k := boot(t, cfg)
		// getdents: six populated dentries copied out.
		got := sysOK(t, k, SysGetdents, UserBuf+8192, 16)
		if got != 6 {
			t.Errorf("%s: getdents = %d, want 6", cfg.Name(), got)
		}
		first, err := k.ReadUser(8192, 8)
		if err != nil || string(first) != "dev_zero" {
			t.Errorf("%s: first dentry name %q", cfg.Name(), first)
		}
		// uname.
		if got := sysOK(t, k, SysUname, UserBuf+12288); got != 0 {
			t.Errorf("uname ret %d", got)
		}
		uts, err := k.ReadUser(12288, 9)
		if err != nil || string(uts) != "KX64 krx " {
			t.Errorf("%s: uname %q", cfg.Name(), uts)
		}
		// yield and brk.
		if got := sysOK(t, k, SysYield); got != 0 {
			t.Errorf("yield ret %d", got)
		}
		b1 := sysOK(t, k, SysBrk, 4096)
		b2 := sysOK(t, k, SysBrk, 4096)
		if b2 != b1+4096 {
			t.Errorf("%s: brk did not advance: %#x -> %#x", cfg.Name(), b1, b2)
		}
	}
}

func TestJOPDispatchTailCall(t *testing.T) {
	// The indirect-jmp dispatcher must work under every protection combo —
	// in particular the X scheme's tail-call decryption and the D scheme's
	// stack restoration before the jmp.
	for _, cfg := range []core.Config{
		core.Vanilla,
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 29},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 30},
		{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 31},
	} {
		k := boot(t, cfg)
		r := k.Syscall(SysTriggerJmp, 5)
		if r.Failed {
			t.Fatalf("%s: JOP dispatch failed: %v trap=%v", cfg.Name(), r.Run.Reason, r.Run.Trap)
		}
		if r.Ret != 0x11 {
			t.Fatalf("%s: default handler result %#x", cfg.Name(), r.Ret)
		}
	}
}

func TestTenAccessorClones(t *testing.T) {
	// §6: "we cloned seven functions of the get_next and peek_next family
	// of routines, as well as memcpy, memcmp, and bitmap_copy" — ten
	// exempt accessors in total, and they must stay exempt.
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, FullCoverage: true, Seed: 33})
	clones := 0
	for _, f := range k.Build.Prog.Funcs {
		if f.AccessorClone {
			clones++
			if !f.NoInstrument {
				t.Errorf("clone %s lost its exemption", f.Name)
			}
		}
	}
	if clones != 10 {
		t.Fatalf("accessor clone count = %d, want 10", clones)
	}
}
