package fuzz

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
	"repro/internal/store"
)

// TestWarmStartZeroBuildsByteIdentical is the store acceptance property the
// CI gate enforces: a second campaign over a populated artifact store boots
// every worker without a single link build, and its report is byte-identical
// to the cold run's — at one worker and at four.
func TestWarmStartZeroBuildsByteIdentical(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := kernel.SetBuildCache(core.NewImageCache(disk))
	defer kernel.SetBuildCache(orig)

	cold, err := Fuzz(campaignOpts(150))
	if err != nil {
		t.Fatal(err)
	}
	if kernel.BuildCache().Stats().Builds == 0 {
		t.Fatal("cold campaign against an empty store compiled nothing")
	}
	want := cold.String()

	for _, workers := range []int{1, 4} {
		// A fresh ImageCache over the same disk is the second process.
		kernel.SetBuildCache(core.NewImageCache(disk))
		opts := campaignOpts(150)
		opts.Workers = workers
		warm, err := Fuzz(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := kernel.BuildCache().Stats().Builds; got != 0 {
			t.Fatalf("workers=%d: warm start ran %d link builds, want 0", workers, got)
		}
		if got := warm.String(); got != want {
			t.Fatalf("workers=%d: warm report diverges from cold:\n--- cold ---\n%s--- warm ---\n%s",
				workers, want, got)
		}
	}
}

// TestCheckpointResumeByteIdentical is the crash-resume contract: a campaign
// killed after its first batch, resumed from the checkpoint store by a fresh
// fuzzer, finalizes to the byte-identical report of an uninterrupted run —
// and a resume with nothing left to do re-emits those same bytes, unmarked
// partial.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	want, err := Fuzz(campaignOpts(150))
	if err != nil {
		t.Fatal(err)
	}

	opts := campaignOpts(150)
	opts.Checkpoint = store.NewMem(0)

	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.batchHook = func(int) { cancel() } // "kill" after the first saved batch
	part, err := f.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Partial || part.Iters != BatchSize {
		t.Fatalf("interrupted run: partial=%v iters=%d, want true/%d",
			part.Partial, part.Iters, BatchSize)
	}

	resumed, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.ledger.Done(); got != BatchSize {
		t.Fatalf("resumed ledger at iteration %d, want %d", got, BatchSize)
	}
	full, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("resumed-to-completion run marked partial")
	}
	if full.String() != want.String() {
		t.Fatalf("resumed report diverges from uninterrupted run:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
			want.String(), full.String())
	}

	// Resume of a finished campaign: nothing to execute, same bytes.
	done, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := done.Run()
	if err != nil {
		t.Fatal(err)
	}
	if again.Partial {
		t.Fatal("resume-complete run marked partial")
	}
	if again.String() != want.String() {
		t.Fatal("resume-complete report diverges from uninterrupted run")
	}
}

// TestCheckpointLongerRerunExtends: Iters is excluded from the campaign key,
// so re-running with a higher iteration budget extends the stored ledger
// instead of cold-starting — and lands on the same bytes as a single long
// campaign.
func TestCheckpointLongerRerunExtends(t *testing.T) {
	ck := store.NewMem(0)

	short := campaignOpts(BatchSize)
	short.Checkpoint = ck
	if _, err := Fuzz(short); err != nil {
		t.Fatal(err)
	}

	long := campaignOpts(150)
	long.Checkpoint = ck
	f, err := New(long)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ledger.Done(); got != BatchSize {
		t.Fatalf("extended rerun resumed at %d, want %d", got, BatchSize)
	}
	got, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Fuzz(campaignOpts(150))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("extended campaign diverges from a single long run:\n--- single ---\n%s--- extended ---\n%s",
			want.String(), got.String())
	}
}

// TestHeatProfileSeedingByteIdentical: seeding a campaign's kernels with a
// prior run's heat profile (store.KindHeat in the CLI) must leave the report
// byte-identical — formation timing is host-side only — while cutting the
// cold single-step passes the hotness ramp costs.
func TestHeatProfileSeedingByteIdentical(t *testing.T) {
	// NoCoverage keeps the superblock fast path armed (a coverage probe
	// disarms it), so the campaign itself exercises the heat ramp.
	opts := Options{
		Iters: 100,
		Seed:  7,
		Config: core.Config{
			XOM: core.XOMSFI, SFILevel: sfi.O3,
			Diversify: true, RAProt: diversify.RAEncrypt,
			Seed: 42,
		},
		NoCoverage: true,
	}

	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	k, err := f.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	profile := k.CPU.HotProfile()
	if len(profile) == 0 {
		t.Fatal("campaign formed no superblocks; nothing to profile")
	}
	coldStats := k.CPU.BlockStats()

	warmF, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := warmF.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	for _, wk := range ks {
		wk.CPU.SeedHotProfile(profile)
	}
	warm, err := warmF.Run()
	if err != nil {
		t.Fatal(err)
	}
	if warm.String() != cold.String() {
		t.Fatalf("heat seeding changed the report:\n--- cold ---\n%s--- seeded ---\n%s",
			cold.String(), warm.String())
	}
	wk, err := warmF.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	warmStats := wk.CPU.BlockStats()
	if warmStats.Cold >= coldStats.Cold {
		t.Fatalf("seeded campaign did not skip cold ramp passes: cold=%d vs unseeded %d",
			warmStats.Cold, coldStats.Cold)
	}
}
