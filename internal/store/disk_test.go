package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestDiskPutGetRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{ProgID: "prog", BuildKey: "xom=1"}
	payload := []byte("image bytes")
	if err := d.Put(KindImage, k, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(KindImage, k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	if _, err := d.Get(KindCorpus, k); !IsNotFound(err) {
		t.Fatalf("same key under different kind must miss, got %v", err)
	}
	s := d.Stats()
	if s.Puts != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	k := Key{ProgID: "persisted"}
	d1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(KindImage, k, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get(KindImage, k)
	if err != nil {
		t.Fatalf("blob lost across reopen: %v", err)
	}
	if string(got) != "survives" {
		t.Fatalf("Get = %q", got)
	}
}

func TestDiskReapsPartialTempFiles(t *testing.T) {
	// Kill-mid-write torture: plant the exact artifacts a killed writer
	// leaves behind — *.tmp files at every stage of completeness — and
	// verify open ignores and reaps them all without disturbing real blobs.
	dir := t.TempDir()
	d1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := Key{ProgID: "good"}
	if err := d1.Put(KindImage, good, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	victim := Key{ProgID: "victim"}
	hash := victim.Hash()
	sub := filepath.Join(dir, KindImage, hash[:2])
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	// Empty temp file, header-only temp file, and an almost-complete one.
	full := wrapBlob([]byte("almost made it"))
	plants := map[string][]byte{
		hash + ".tmp1": nil,
		hash + ".tmp2": full[:blobHeaderSize],
		hash + ".tmp3": full[:len(full)-1],
	}
	for name, data := range plants {
		if err := os.WriteFile(filepath.Join(sub, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Get(KindImage, victim); !IsNotFound(err) {
		t.Fatalf("partial write must read as a miss, got %v", err)
	}
	if _, err := d2.Get(KindImage, good); err != nil {
		t.Fatalf("intact blob disturbed by reaping: %v", err)
	}
	for name := range plants {
		if _, err := os.Stat(filepath.Join(sub, name)); !os.IsNotExist(err) {
			t.Errorf("temp file %s not reaped (err=%v)", name, err)
		}
	}
}

func TestDiskRejectsCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{ProgID: "rotted"}
	if err := d.Put(KindImage, k, []byte("pristine payload")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit on disk behind the store's back.
	path := d.blobPath(KindImage, k.Hash())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := d.Get(KindImage, k)
	nf, ok := err.(*NotFoundError)
	if !ok || !nf.Corrupt {
		t.Fatalf("corrupt blob must be a Corrupt miss, got data=%q err=%v", got, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob not deleted (err=%v)", err)
	}
	if s := d.Stats(); s.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", s.Corrupt)
	}
	// The rebuild path: a fresh Put over the discarded address must work.
	if err := d.Put(KindImage, k, []byte("rebuilt")); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Get(KindImage, k); err != nil || string(got) != "rebuilt" {
		t.Fatalf("rebuild after corruption: %q, %v", got, err)
	}
}

func TestDiskLRUEvictionUnderTwoImageQuota(t *testing.T) {
	// Quota sized for exactly two enveloped blobs: the third Put evicts the
	// least recently used one (and only it).
	payload := bytes.Repeat([]byte{0xAB}, 100)
	blobSize := uint64(blobHeaderSize + len(payload))
	d, err := OpenDisk(t.TempDir(), 2*blobSize)
	if err != nil {
		t.Fatal(err)
	}
	k1 := Key{ProgID: "img1"}
	k2 := Key{ProgID: "img2"}
	k3 := Key{ProgID: "img3"}
	for _, k := range []Key{k1, k2} {
		if err := d.Put(KindImage, k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch img1 so img2 is the LRU victim.
	if _, err := d.Get(KindImage, k1); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(KindImage, k3, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(KindImage, k2); !IsNotFound(err) {
		t.Fatalf("img2 should have been evicted, got %v", err)
	}
	if _, err := d.Get(KindImage, k1); err != nil {
		t.Fatalf("img1 evicted despite recent use: %v", err)
	}
	if _, err := d.Get(KindImage, k3); err != nil {
		t.Fatalf("img3 evicted right after Put: %v", err)
	}
	s := d.Stats()
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if s.Bytes != 2*blobSize {
		t.Fatalf("Bytes = %d, want %d", s.Bytes, 2*blobSize)
	}
}

func TestDiskPinBlocksEviction(t *testing.T) {
	payload := bytes.Repeat([]byte{0x11}, 64)
	blobSize := uint64(blobHeaderSize + len(payload))
	d, err := OpenDisk(t.TempDir(), blobSize)
	if err != nil {
		t.Fatal(err)
	}
	pinned := Key{ProgID: "pinned"}
	release := d.Pin(KindImage, pinned)
	if err := d.Put(KindImage, pinned, payload); err != nil {
		t.Fatal(err)
	}
	// This Put overflows the quota; the pinned blob must not be the victim.
	if err := d.Put(KindImage, Key{ProgID: "other"}, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(KindImage, pinned); err != nil {
		t.Fatalf("pinned blob evicted: %v", err)
	}
	release()
	if s := d.Stats(); s.Bytes > blobSize {
		t.Fatalf("Bytes = %d over quota %d after release", s.Bytes, blobSize)
	}
}

func TestDiskEvictionOrderSurvivesReopen(t *testing.T) {
	// The reopened store seeds LRU order from mtimes, so the oldest blob of
	// the previous process is the first eviction victim.
	payload := bytes.Repeat([]byte{0x22}, 50)
	blobSize := uint64(blobHeaderSize + len(payload))
	dir := t.TempDir()
	d1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := Key{ProgID: "old"}
	newer := Key{ProgID: "newer"}
	if err := d1.Put(KindImage, old, payload); err != nil {
		t.Fatal(err)
	}
	// Distinct mtimes without sleeping.
	future := filepath.Join(dir, KindImage, old.Hash()[:2], old.Hash()+".blob")
	info, err := os.Stat(future)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(KindImage, newer, payload); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(future, info.ModTime().Add(-1e9), info.ModTime().Add(-1e9)); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d2, err := OpenDisk(dir, 2*blobSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Put(KindImage, Key{ProgID: "third"}, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Get(KindImage, old); !IsNotFound(err) {
		t.Fatalf("oldest blob should be the reopen eviction victim, got %v", err)
	}
	if _, err := d2.Get(KindImage, newer); err != nil {
		t.Fatalf("newer blob evicted out of order: %v", err)
	}
}

func TestDiskConcurrentAccess(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := Key{ProgID: fmt.Sprintf("p%d", i%7)}
				switch i % 3 {
				case 0:
					if err := d.Put(KindImage, k, []byte(strings.Repeat("x", 32))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					d.Get(KindImage, k)
				case 2:
					release := d.Pin(KindImage, k)
					release()
				}
			}
		}(g)
	}
	wg.Wait()
	d.Stats()
}
